"""Section V-B(c) reproduction: effect of removing quasi-dense rows on
hypergraph partitioning time and quality.

Sweeps the density threshold tau: for each value, partition each
subdomain's G with the row-net hypergraph ordering after removing
empty + quasi-dense rows, and record (a) the partitioning time and (b)
the padded-zero fraction. The paper observes the time dropping by
factors up to 4 while quality stays flat until tau < 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rhs_reorder import hypergraph_column_order
from repro.experiments.common import (
    SubdomainTriangular,
    prepare_triangular_study,
    render_table,
)
from repro.lu import padded_zeros
from repro.matrices import generate
from repro.utils import SeedLike

__all__ = ["QuasiDensePoint", "run_quasidense", "format_quasidense"]

DEFAULT_TAUS = (None, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05)


@dataclass
class QuasiDensePoint:
    tau: float | None
    partition_seconds: float      # summed over subdomains
    padded_fraction_avg: float
    rows_removed_frac: float      # average fraction of rows removed

    @property
    def tau_label(self) -> str:
        return "none" if self.tau is None else f"{self.tau:g}"


def run_quasidense(matrix: str = "tdr190k", scale: str = "small", *,
                   k: int = 8, block_size: int = 64,
                   taus=DEFAULT_TAUS, seed: SeedLike = 0,
                   subs: list[SubdomainTriangular] | None = None
                   ) -> list[QuasiDensePoint]:
    """Sweep the quasi-dense threshold tau (Section V-B(c) study)."""
    if subs is None:
        gm = generate(matrix, scale)
        subs = prepare_triangular_study(gm, k=k, seed=seed)
    points: list[QuasiDensePoint] = []
    for tau in taus:
        secs = 0.0
        fracs = []
        removed = []
        for s in subs:
            if s.E_factored.shape[1] == 0:
                continue
            res = hypergraph_column_order(s.G_pattern, block_size, tau=tau,
                                          seed=seed)
            secs += res.partition_seconds
            stats = padded_zeros(s.G_pattern, res.parts)
            fracs.append(stats.fraction)
            n_rows = s.G_pattern.shape[0]
            removed.append((res.n_rows_removed_dense
                            + res.n_rows_removed_empty) / max(n_rows, 1))
        points.append(QuasiDensePoint(
            tau=tau, partition_seconds=secs,
            padded_fraction_avg=float(np.mean(fracs)) if fracs else 0.0,
            rows_removed_frac=float(np.mean(removed)) if removed else 0.0))
    return points


def format_quasidense(points: list[QuasiDensePoint]) -> str:
    """Render the tau sweep as fixed-width text."""
    base = points[0].partition_seconds if points else 1.0
    rows = [[p.tau_label, p.partition_seconds,
             (base / p.partition_seconds) if p.partition_seconds else
             float("inf"),
             p.padded_fraction_avg, p.rows_removed_frac]
            for p in points]
    return render_table(
        ["tau", "partition (s)", "speedup", "padded frac", "rows removed"],
        rows, title="Section V-B(c) — quasi-dense row removal sweep")
