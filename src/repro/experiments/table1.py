"""Table I reproduction: test-matrix properties.

Columns mirror the paper's Table I: name, source, n, nnz/n, pattern
symmetry, value symmetry, positive definiteness. Absolute sizes are
smaller (DESIGN.md substitution) but the structural classes match.
"""

from __future__ import annotations

from repro.experiments.common import render_table
from repro.matrices import table1_metadata

__all__ = ["run_table1", "format_table1"]


def run_table1(scale: str = "small", *, check_definiteness: bool = True) -> list[dict]:
    """Generate the suite and gather Table-I rows."""
    return table1_metadata(scale, check_definiteness=check_definiteness)


def format_table1(rows: list[dict]) -> str:
    """Render Table-I rows as fixed-width text."""
    yn = lambda v: "yes" if v else ("?" if v is None else "no")
    table_rows = [
        [r["name"], r["source"], r["n"], r["nnz/n"],
         yn(r["pattern_symmetric"]), yn(r["value_symmetric"]),
         yn(r["positive_definite"])]
        for r in rows
    ]
    return render_table(
        ["name", "source", "n", "nnz/n", "pattern", "value", "pos.def."],
        table_rows, title="Table I — test matrices (synthetic analogues)")
