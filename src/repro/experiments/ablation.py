"""Ablations on RHB design choices (DESIGN.md Section 5).

- weight scheme: unit (static, = standard partitioner) vs w1 (dynamic,
  single constraint) vs w1w2 (multi) vs w2 (static row weights) — the
  paper's central claim is that *dynamic* weights are what beats NGD;
- cut metric under the same scheme;
- bisection refinement strength (FM passes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import build_dbbd, rhb_partition
from repro.experiments.common import render_table
from repro.graphs import nested_dissection_partition
from repro.matrices import GeneratedMatrix, generate
from repro.utils import SeedLike

__all__ = ["AblationRow", "run_weight_ablation", "run_fm_ablation",
           "format_ablation"]


@dataclass
class AblationRow:
    label: str
    separator_size: int
    dim_ratio: float
    nnz_D_ratio: float
    ncol_E_ratio: float
    nnz_E_ratio: float
    seconds: float


def _mean_rows(label: str, rows: list[AblationRow]) -> AblationRow:
    return AblationRow(
        label=label,
        separator_size=int(np.mean([r.separator_size for r in rows])),
        dim_ratio=float(np.mean([r.dim_ratio for r in rows])),
        nnz_D_ratio=float(np.mean([r.nnz_D_ratio for r in rows])),
        ncol_E_ratio=float(np.mean([r.ncol_E_ratio for r in rows])),
        nnz_E_ratio=float(np.mean([r.nnz_E_ratio for r in rows])),
        seconds=float(np.mean([r.seconds for r in rows])))


def _score(gm: GeneratedMatrix, *, k: int, metric: str, scheme: str,
           seed: SeedLike, fm_passes: int = 8,
           label: str | None = None) -> AblationRow:
    t0 = time.perf_counter()
    r = rhb_partition(gm.A, k, M=gm.M, metric=metric, scheme=scheme,
                      seed=seed, fm_passes=fm_passes)
    secs = time.perf_counter() - t0
    q = r.to_dbbd(gm.A).quality()
    return AblationRow(label=label or f"{metric}/{scheme}",
                       separator_size=q.separator_size,
                       dim_ratio=q.dim_ratio, nnz_D_ratio=q.nnz_D_ratio,
                       ncol_E_ratio=q.ncol_E_ratio,
                       nnz_E_ratio=q.nnz_E_ratio, seconds=secs)


def _score_ngd(gm: GeneratedMatrix, *, k: int, seed: SeedLike) -> AblationRow:
    t0 = time.perf_counter()
    r = nested_dissection_partition(gm.A, k, seed=seed)
    secs = time.perf_counter() - t0
    q = build_dbbd(gm.A, r.part, k).quality()
    return AblationRow(label="ngd", separator_size=q.separator_size,
                       dim_ratio=q.dim_ratio, nnz_D_ratio=q.nnz_D_ratio,
                       ncol_E_ratio=q.ncol_E_ratio,
                       nnz_E_ratio=q.nnz_E_ratio, seconds=secs)


def run_weight_ablation(matrix: str = "tdr190k", scale: str = "small", *,
                        k: int = 8, metric: str = "soed",
                        seed: SeedLike = 0,
                        n_seeds: int = 3) -> list[AblationRow]:
    """Sweep the weight scheme (plus the NGD baseline), averaging the
    quality metrics over ``n_seeds`` partitioner seeds — single-seed
    balance ratios are noisy at reproduction scale."""
    gm = generate(matrix, scale)
    base = int(seed) if not isinstance(seed, np.random.Generator) else 0
    seeds = [base + 1000 * t for t in range(max(1, n_seeds))]
    out = [_mean_rows("ngd", [_score_ngd(gm, k=k, seed=s) for s in seeds])]
    for scheme in ("unit", "w2", "w1", "w1w2"):
        rows = [_score(gm, k=k, metric=metric, scheme=scheme, seed=s)
                for s in seeds]
        out.append(_mean_rows(f"{metric}/{scheme}", rows))
    return out


def run_fm_ablation(matrix: str = "tdr190k", scale: str = "small", *,
                    k: int = 8, seed: SeedLike = 0) -> list[AblationRow]:
    """soed/w1 with increasing FM refinement effort."""
    gm = generate(matrix, scale)
    return [_score(gm, k=k, metric="soed", scheme="w1", seed=seed,
                   fm_passes=p, label=f"fm_passes={p}")
            for p in (1, 2, 4, 8, 16)]


def format_ablation(rows: list[AblationRow], *, title: str) -> str:
    """Render ablation rows as fixed-width text."""
    return render_table(
        ["config", "sep", "dim(D)", "nnz(D)", "col(E)", "nnz(E)", "time(s)"],
        [[r.label, r.separator_size, r.dim_ratio, r.nnz_D_ratio,
          r.ncol_E_ratio, r.nnz_E_ratio, r.seconds] for r in rows],
        title=title)
