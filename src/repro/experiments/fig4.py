"""Fig. 4 reproduction: fraction of padded zeros vs block size B for
the three RHS orderings (natural / postorder / hypergraph), reported as
min / average / max over the k subdomains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rhs_reorder import (
    hypergraph_column_order,
    natural_column_order,
    postorder_column_order,
)
from repro.experiments.common import (
    SubdomainTriangular,
    prepare_triangular_study,
    render_table,
)
from repro.lu import padded_zeros, partition_columns
from repro.matrices import generate
from repro.utils import SeedLike

__all__ = ["Fig4Point", "run_fig4", "format_fig4", "ordering_parts"]

ORDERINGS = ("natural", "postorder", "hypergraph")
DEFAULT_BLOCK_SIZES = (8, 16, 32, 64, 128, 256)


@dataclass
class Fig4Point:
    """One (ordering, B) point: padded-zero fraction across subdomains."""

    ordering: str
    block_size: int
    frac_min: float
    frac_avg: float
    frac_max: float


def ordering_parts(sub: SubdomainTriangular, ordering: str, B: int, *,
                   tau: float | None = None,
                   seed: SeedLike = 0) -> list[np.ndarray]:
    """Column parts of one subdomain's E^ under the given ordering."""
    m = sub.E_factored.shape[1]
    if ordering == "natural":
        order = natural_column_order(m) if m else np.empty(0, dtype=np.int64)
    elif ordering == "postorder":
        order = postorder_column_order(sub.E_factored)
    elif ordering == "hypergraph":
        order = hypergraph_column_order(sub.G_pattern, B, tau=tau,
                                        seed=seed).order
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    return partition_columns(order, B)


def run_fig4(matrix: str = "tdr190k", scale: str = "small", *,
             k: int = 8, block_sizes=DEFAULT_BLOCK_SIZES,
             orderings=ORDERINGS, tau: float | None = 0.4,
             seed: SeedLike = 0,
             subs: list[SubdomainTriangular] | None = None) -> list[Fig4Point]:
    """One panel of Fig. 4. Pass precomputed ``subs`` to share the
    factorizations with a Fig. 5 run."""
    if subs is None:
        gm = generate(matrix, scale)
        subs = prepare_triangular_study(gm, k=k, seed=seed)
    points: list[Fig4Point] = []
    for ordering in orderings:
        for B in block_sizes:
            fracs = []
            for s in subs:
                if s.E_factored.shape[1] == 0:
                    continue
                parts = ordering_parts(s, ordering, B, tau=tau, seed=seed)
                stats = padded_zeros(s.G_pattern, parts)
                fracs.append(stats.fraction)
            if not fracs:
                continue
            arr = np.asarray(fracs)
            points.append(Fig4Point(ordering=ordering, block_size=B,
                                    frac_min=float(arr.min()),
                                    frac_avg=float(arr.mean()),
                                    frac_max=float(arr.max())))
    return points


def format_fig4(points: list[Fig4Point], *, title: str = "Fig. 4") -> str:
    """Render one Fig. 4 panel as fixed-width text."""
    rows = [[p.ordering, p.block_size, p.frac_min, p.frac_avg, p.frac_max]
            for p in points]
    return render_table(
        ["ordering", "B", "frac min", "frac avg", "frac max"], rows,
        title=title + " — fraction of padded zeros (lower is better)")
