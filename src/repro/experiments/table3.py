"""Table III reproduction: statistics of the eight interior subdomains'
interface solution patterns ``G_l = str(L^{-1} P E^_l)``.

Columns follow the paper: nnz_G, nnzcol_G (columns with a nonzero),
nnzrow_G (rows with a nonzero), effective density
``nnz_G / (nnzcol_G * nnzrow_G)``, and fill ratio ``nnz_G / nnz_E``;
min and max over the k subdomains. These statistics explain when the
hypergraph RHS ordering beats the postorder (dense interfaces) and
vice versa (small fill ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import prepare_triangular_study, render_table
from repro.matrices import generate
from repro.sparse.patterns import col_nnz, row_nnz
from repro.utils import SeedLike

__all__ = ["Table3Row", "run_table3", "format_table3"]

DEFAULT_MATRICES = ("tdr190k", "dds.quad", "dds.linear", "matrix211")


@dataclass
class Table3Row:
    matrix: str
    nnz_g_min: int
    nnz_g_max: int
    nnzcol_g_min: int
    nnzcol_g_max: int
    nnzrow_g_min: int
    nnzrow_g_max: int
    eff_density_min: float
    eff_density_max: float
    fill_ratio_min: float
    fill_ratio_max: float


def run_table3(matrices=DEFAULT_MATRICES, scale: str = "small", *,
               k: int = 8, seed: SeedLike = 0) -> list[Table3Row]:
    """Gather interface-pattern statistics per matrix (Table III)."""
    rows: list[Table3Row] = []
    for m in matrices:
        gm = generate(m, scale)
        subs = prepare_triangular_study(gm, k=k, seed=seed)
        nnz_g, ncol_g, nrow_g, dens, fill = [], [], [], [], []
        for s in subs:
            G = s.G_pattern
            nnz = int(G.nnz)
            nc = int(np.count_nonzero(col_nnz(G)))
            nr = int(np.count_nonzero(row_nnz(G)))
            nnz_g.append(nnz)
            ncol_g.append(nc)
            nrow_g.append(nr)
            dens.append(nnz / (nc * nr) if nc and nr else 0.0)
            ne = int(s.E_factored.nnz)
            fill.append(nnz / ne if ne else 0.0)
        rows.append(Table3Row(
            matrix=m,
            nnz_g_min=min(nnz_g), nnz_g_max=max(nnz_g),
            nnzcol_g_min=min(ncol_g), nnzcol_g_max=max(ncol_g),
            nnzrow_g_min=min(nrow_g), nnzrow_g_max=max(nrow_g),
            eff_density_min=min(dens), eff_density_max=max(dens),
            fill_ratio_min=min(fill), fill_ratio_max=max(fill)))
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    """Render Table-III rows as fixed-width text."""
    out = []
    for r in rows:
        out.append([r.matrix,
                    f"{r.nnz_g_min}/{r.nnz_g_max}",
                    f"{r.nnzcol_g_min}/{r.nnzcol_g_max}",
                    f"{r.nnzrow_g_min}/{r.nnzrow_g_max}",
                    f"{r.eff_density_min:.3f}/{r.eff_density_max:.3f}",
                    f"{r.fill_ratio_min:.1f}/{r.fill_ratio_max:.1f}"])
    return render_table(
        ["matrix", "nnz_G min/max", "nnzcol_G", "nnzrow_G",
         "eff.dens.", "fill-ratio"],
        out, title="Table III — interface solution-pattern statistics (k=8, NGD+MD)")
