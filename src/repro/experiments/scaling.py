"""Two-level vs one-level parallelism (the paper's Section I argument).

PDSLin's defining design decision is *hierarchical* parallelism: keep
the number of subdomains k small (tens) and give each subdomain many
cores, instead of one subdomain per core. One-level scaling blows up the
Schur complement — more subdomains mean a larger separator, a denser
S~, and more GMRES iterations on the highly indefinite systems PDSLin
targets.

For each total core count P this experiment runs:

- **two-level**: k = 8 subdomains, measured one-process-per-subdomain,
  projected to P cores with the Amdahl model;
- **one-level**: k = P subdomains, one core each (no projection — the
  measured makespan is the simulated time).

and reports total time, separator size, and iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import render_table
from repro.matrices import generate
from repro.parallel import TwoLevelModel
from repro.solver import PDSLin, PDSLinConfig
from repro.utils import SeedLike

__all__ = ["ScalingPoint", "run_twolevel_vs_onelevel", "format_scaling"]


@dataclass
class ScalingPoint:
    cores: int
    mode: str          # "two-level (k=8)" or "one-level (k=P)"
    k: int
    total_time: float
    schur_size: int
    iterations: int
    converged: bool


def _run(gm, k: int, seed: SeedLike, b: np.ndarray):
    cfg = PDSLinConfig(k=k, partitioner="rhb", metric="soed", scheme="w1",
                       seed=seed, gmres_tol=1e-8,
                       drop_interface=2e-4, drop_schur=1e-6,
                       rhs_ordering="postorder")
    solver = PDSLin(gm.A, cfg, M=gm.M)
    res = solver.solve(b)
    return solver, res


def run_twolevel_vs_onelevel(matrix: str = "tdr190k", scale: str = "small",
                             *, cores=(8, 16, 32), k_two_level: int = 8,
                             seed: SeedLike = 0) -> list[ScalingPoint]:
    """Compare two-level (fixed small k) vs one-level (k = P) runs."""
    gm = generate(matrix, scale)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.n)
    points: list[ScalingPoint] = []

    # two-level: one measured run, projected per core count
    solver2, res2 = _run(gm, k_two_level, seed, b)
    model = TwoLevelModel(k=k_two_level)
    for P in cores:
        proj = model.project(solver2.machine, P)
        total = sum(v for s, v in proj.items() if s != "Partition")
        points.append(ScalingPoint(cores=P, mode=f"two-level (k={k_two_level})",
                                   k=k_two_level, total_time=total,
                                   schur_size=res2.schur_size,
                                   iterations=res2.iterations,
                                   converged=res2.converged))

    # one-level: k = P, no intra-subdomain speedup available
    for P in cores:
        solver1, res1 = _run(gm, P, seed, b)
        br = solver1.machine.breakdown()
        total = sum(v for s, v in br.items() if s != "Partition")
        points.append(ScalingPoint(cores=P, mode="one-level (k=P)", k=P,
                                   total_time=total,
                                   schur_size=res1.schur_size,
                                   iterations=res1.iterations,
                                   converged=res1.converged))
    return points


def format_scaling(points: list[ScalingPoint]) -> str:
    """Render the scaling comparison as fixed-width text."""
    rows = [[p.cores, p.mode, p.total_time, p.schur_size, p.iterations,
             "yes" if p.converged else "NO"] for p in points]
    return render_table(
        ["cores", "mode", "time (s)", "n_S", "#iter", "conv"],
        rows, title="Two-level vs one-level parallelism "
                    "(hierarchical design, Section I)")
