"""Fig. 3 reproduction: load balance and solution time, RHB (con1 /
cnet / soed, single- or multi-constraint) vs NGD, k in {8, 32}.

Each group of bars in the paper is one partitioner configuration:
max/min ratios of dim(D), nnz(D), col(E), nnz(E), the PDSLin solve time
normalized to NGD, and the separator size printed above the bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    PartitionRun,
    render_table,
    run_partitioner,
)
from repro.matrices import GeneratedMatrix, generate
from repro.solver import PDSLin, PDSLinConfig
from repro.utils import SeedLike

__all__ = ["Fig3Row", "run_fig3", "format_fig3"]

METRICS = ("con1", "cnet", "soed")


@dataclass
class Fig3Row:
    """One bar group of Fig. 3."""

    label: str
    separator_size: int
    dim_ratio: float
    nnz_D_ratio: float
    ncol_E_ratio: float
    nnz_E_ratio: float
    time_seconds: float        # total simulated PDSLin time (one-level)
    time_normalized: float     # divided by the NGD time


def _pdslin_time(gm: GeneratedMatrix, k: int, *, partitioner: str,
                 metric: str, scheme: str, seed: SeedLike) -> float:
    cfg = PDSLinConfig(k=k, partitioner=partitioner, metric=metric,
                       scheme=scheme, seed=seed, gmres_tol=1e-8,
                       rhs_ordering="postorder")
    solver = PDSLin(gm.A, cfg, M=gm.M)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.A.shape[0])
    solver.solve(b)
    br = solver.machine.breakdown()
    # the paper's solution time excludes the partitioning itself
    return sum(v for s, v in br.items() if s != "Partition")


def run_fig3(matrix: str = "tdr190k", scale: str = "small", *,
             k: int = 8, constraint: str = "single", seed: SeedLike = 0,
             include_solve: bool = True) -> list[Fig3Row]:
    """One panel of Fig. 3 (pick ``k`` and single/multi ``constraint``)."""
    if constraint not in ("single", "multi"):
        raise ValueError("constraint must be 'single' or 'multi'")
    scheme = "w1" if constraint == "single" else "w1w2"
    gm = generate(matrix, scale)
    runs: list[tuple[str, PartitionRun, str, str]] = []
    for metric in METRICS:
        pr = run_partitioner(gm, k, method="rhb", metric=metric,
                             scheme=scheme, seed=seed)
        runs.append((metric.upper(), pr, metric, scheme))
    pr_ngd = run_partitioner(gm, k, method="ngd", seed=seed)
    runs.append(("PT-SCOTCH", pr_ngd, "soed", scheme))

    times: dict[str, float] = {}
    if include_solve:
        for label, pr, metric, sch in runs:
            partitioner = "ngd" if label == "PT-SCOTCH" else "rhb"
            times[label] = _pdslin_time(gm, k, partitioner=partitioner,
                                        metric=metric, scheme=sch, seed=seed)
    base = times.get("PT-SCOTCH", 1.0) or 1.0

    rows = []
    for label, pr, _, _ in runs:
        q = pr.quality
        t = times.get(label, float("nan"))
        rows.append(Fig3Row(
            label=label, separator_size=int(q.separator_size),
            dim_ratio=q.dim_ratio, nnz_D_ratio=q.nnz_D_ratio,
            ncol_E_ratio=q.ncol_E_ratio, nnz_E_ratio=q.nnz_E_ratio,
            time_seconds=t,
            time_normalized=(t / base) if include_solve else float("nan")))
    return rows


def format_fig3(rows: list[Fig3Row], *, title: str = "Fig. 3") -> str:
    """Render one Fig. 3 panel as fixed-width text."""
    return render_table(
        ["config", "sep", "dim(D)", "nnz(D)", "col(E)", "nnz(E)",
         "time(s)", "time/NGD"],
        [[r.label, r.separator_size, r.dim_ratio, r.nnz_D_ratio,
          r.ncol_E_ratio, r.nnz_E_ratio, r.time_seconds, r.time_normalized]
         for r in rows],
        title=title + " — balance is max/min over subdomains (lower is better)")
