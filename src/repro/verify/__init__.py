"""Differential verification subsystem (``repro.verify``).

Three layers:

- :mod:`repro.verify.oracles` — independent reference implementations
  (dense/scipy/plain-Python) of every hot kernel;
- :mod:`repro.verify.invariants` — pluggable post-stage assertions,
  armed through ``PDSLin(..., verify=True)`` and the partitioners'
  ``verify=`` flags;
- :mod:`repro.verify.differential` / :mod:`repro.verify.fuzz` — whole-
  pipeline differential checks and the seeded fuzz harness
  (``python -m repro.verify.fuzz``).

Only the oracles and invariants are imported eagerly: the solver
imports this package for its ``verify=`` flag, so the differential and
fuzz layers (which import the solver) load lazily.
"""

from repro.verify.invariants import (
    NULL_VERIFIER,
    NullVerifier,
    VerificationError,
    Verifier,
)
from repro.verify.oracles import (
    cut_metrics_reference,
    dense_exact_schur,
    dense_triangular_solve_oracle,
    lu_reconstruction_error,
    materialize_operator,
    normwise_backward_error,
    padded_zeros_bruteforce,
    rhb_cut_cost_reference,
    soed_identity_gap,
    splu_solve_oracle,
    vertex_weights_reference,
)

__all__ = [
    "NULL_VERIFIER",
    "NullVerifier",
    "VerificationError",
    "Verifier",
    "cut_metrics_reference",
    "dense_exact_schur",
    "dense_triangular_solve_oracle",
    "lu_reconstruction_error",
    "materialize_operator",
    "normwise_backward_error",
    "padded_zeros_bruteforce",
    "rhb_cut_cost_reference",
    "soed_identity_gap",
    "splu_solve_oracle",
    "vertex_weights_reference",
]
