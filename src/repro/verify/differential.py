"""Differential verification: the full hybrid pipeline against
independent references.

Two entry points:

- :func:`differential_solve` — run :class:`repro.solver.PDSLin` on
  ``A x = b`` with every invariant hook armed, then accept the solution
  only if its normwise backward error clears ``rtol`` and scipy's
  ``spsolve``/SuperLU reference agrees the system is solvable.
- :func:`check_stage_oracles` — rebuild the Schur pipeline with *no
  dropping* and compare three independently computed Schur complements
  entry for entry: the dense ``C - sum F_l D_l^{-1} E_l`` oracle, the
  materialized implicit operator, and the assembled approximate Schur
  at ``drop_tol = 0``.

Both raise :class:`repro.verify.VerificationError` (or let solver
exceptions propagate); the fuzz harness catches and buckets these.

PDSLin is imported lazily inside the functions: the solver itself
imports :mod:`repro.verify.invariants` for its ``verify=`` flag, and an
eager import here would be a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.verify.invariants import VerificationError, Verifier
from repro.verify.oracles import (
    dense_exact_schur,
    materialize_operator,
    normwise_backward_error,
    splu_solve_oracle,
)

__all__ = ["DifferentialReport", "differential_solve", "check_stage_oracles"]


@dataclass
class DifferentialReport:
    """What a differential run checked and measured."""

    backward_error: float
    oracle_backward_error: float
    iterations: int
    converged: bool
    checks_run: list[str] = field(default_factory=list)

    @property
    def n_checks(self) -> int:
        return len(self.checks_run)


def _default_config(k: int, seed, **overrides):
    from repro.solver.pdslin import PDSLinConfig
    base = dict(k=k, seed=seed, partition_trials=1, gmres_maxiter=400)
    base.update(overrides)
    return PDSLinConfig(**base)


def differential_solve(A: sp.spmatrix, b: np.ndarray, *, k: int = 4,
                       seed=0, rtol: float = 1e-6,
                       verifier: Verifier | None = None,
                       **config_overrides) -> DifferentialReport:
    """Solve ``A x = b`` with the hybrid solver, all invariants armed,
    and accept only on a small normwise backward error.

    The backward error ``||b - A x|| / (||A||_1 ||x|| + ||b||)`` is the
    acceptance criterion rather than a comparison against the reference
    *solution*: on ill-conditioned systems two backward-stable solvers
    legitimately return far-apart solutions. The SuperLU reference is
    still run — if the direct solver itself cannot reach ``sqrt(rtol)``
    backward error, the system is too singular to adjudicate and the
    case is accepted as vacuous (reported in the result).
    """
    from repro.solver.pdslin import PDSLin
    from repro.solver.runtime import RuntimeOptions

    verifier = verifier or Verifier()
    cfg = _default_config(k, seed, **config_overrides)
    b = np.asarray(b, dtype=np.float64)

    x_ref = splu_solve_oracle(A, b)
    oracle_berr = normwise_backward_error(A, x_ref, b)

    solver = PDSLin(A, cfg, runtime=RuntimeOptions(verify=verifier))
    res = solver.solve(b)
    berr = normwise_backward_error(A, res.x, b)

    report = DifferentialReport(
        backward_error=berr, oracle_backward_error=oracle_berr,
        iterations=res.iterations, converged=res.converged,
        checks_run=list(verifier.checks_run))
    if oracle_berr > np.sqrt(rtol):
        return report  # reference cannot solve it either: vacuous case
    if berr > rtol:
        raise VerificationError(
            "differential.backward-error",
            f"hybrid solve backward error {berr:.3e} > rtol {rtol:.1e} "
            f"(reference achieved {oracle_berr:.3e}; "
            f"converged={res.converged}, iterations={res.iterations})")
    return report


def check_stage_oracles(A: sp.spmatrix, *, k: int = 4, seed=0,
                        rtol: float = 1e-8,
                        verifier: Verifier | None = None) -> dict:
    """Cross-check three independent Schur complements on ``A``.

    Runs the pipeline with *zero* drop tolerances and the numerics
    pre-pass off (so every stage is exact up to roundoff), then
    compares, entry for entry:

    1. ``dense_exact_schur`` — dense solves on the uncompressed DBBD
       blocks;
    2. the implicit exact operator ``implicit_schur_matvec``,
       materialized column by column;
    3. the assembled ``S~`` at ``drop_tol = 0`` (the production
       interface-solve + scatter path).

    Returns the max pairwise discrepancies; raises
    :class:`VerificationError` if any exceeds ``rtol`` (relative to
    ``max|S|``).
    """
    from repro.solver.pdslin import PDSLin
    from repro.solver.runtime import RuntimeOptions
    from repro.solver.schur import implicit_schur_matvec

    verifier = verifier or Verifier()
    cfg = _default_config(k, seed, drop_interface=0.0, drop_schur=0.0,
                          numerics=False)
    solver = PDSLin(A, cfg, runtime=RuntimeOptions(verify=verifier))
    solver.setup()
    assert solver.partition is not None
    ns = solver.partition.separator_size
    if ns == 0:
        return {"ns": 0, "dense_vs_implicit": 0.0, "dense_vs_assembled": 0.0}

    S_dense = dense_exact_schur(solver.partition)
    subs = [s.interfaces for s in solver.subdomains]
    facs = [s.factors for s in solver.subdomains]
    perms = [s.perm for s in solver.subdomains]
    S_impl = materialize_operator(
        implicit_schur_matvec(solver.partition.C(), subs, facs, perms), ns)
    S_asm = solver.S_tilde.toarray()

    scale = max(float(np.abs(S_dense).max()), 1e-300)
    gap_impl = float(np.abs(S_dense - S_impl).max()) / scale
    gap_asm = float(np.abs(S_dense - S_asm).max()) / scale
    if gap_impl > rtol:
        raise VerificationError(
            "differential.schur-implicit",
            f"implicit Schur operator differs from the dense oracle by "
            f"{gap_impl:.3e} (rel, ns={ns})")
    if gap_asm > rtol:
        raise VerificationError(
            "differential.schur-assembled",
            f"assembled S~ at drop_tol=0 differs from the dense oracle "
            f"by {gap_asm:.3e} (rel, ns={ns})")
    return {"ns": ns, "dense_vs_implicit": gap_impl,
            "dense_vs_assembled": gap_asm,
            "checks_run": list(verifier.checks_run)}
