"""Failure shrinking and ``.npz`` reproducers for the fuzz harness.

When a fuzz case fails, :func:`shrink_case` greedily reduces it —
principal submatrices by halves then quarters, then smaller ``k`` —
re-running the failing check after each reduction and keeping a
candidate only when it fails in the *same category* (e.g. a
``verify:schur.drop-subset`` failure must not "shrink" into an
unrelated singular-matrix exception). The final minimal case is saved
with :func:`save_reproducer` and replayed with
``python -m repro.verify.fuzz --replay <file>``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["FuzzCase", "run_case", "failure_category", "shrink_case",
           "save_reproducer", "load_reproducer"]


@dataclass(frozen=True)
class FuzzCase:
    """One differential-verification input: a system plus solver knobs."""

    name: str
    A: sp.csr_matrix
    b: np.ndarray
    k: int = 4
    seed: int = 0

    @property
    def n(self) -> int:
        return self.A.shape[0]


def failure_category(exc: BaseException) -> str:
    """Stable bucket for a failure, used to steer shrinking."""
    from repro.verify.invariants import VerificationError
    if isinstance(exc, VerificationError):
        return f"verify:{exc.check}"
    return f"exception:{type(exc).__name__}"


def run_case(case: FuzzCase, *, rtol: float = 1e-6) -> Tuple[bool, str]:
    """Run the differential check on one case.

    Returns ``(ok, category)`` — ``category`` is ``""`` on success.
    Any exception (a failed invariant, a crash in the pipeline) is a
    failure; only genuinely unsolvable inputs are vacuously accepted
    (the reference solver cannot adjudicate them, see
    :func:`repro.verify.differential.differential_solve`).
    """
    from repro.verify.differential import differential_solve
    try:
        differential_solve(case.A, case.b, k=case.k, seed=case.seed,
                           rtol=rtol)
    except Exception as exc:  # noqa: BLE001 - every failure is a finding
        return False, failure_category(exc)
    return True, ""


def _principal_submatrix(case: FuzzCase, keep: np.ndarray) -> FuzzCase:
    A = case.A[keep][:, keep].tocsr()
    return replace(case, A=A, b=case.b[keep],
                   name=f"{case.name}:n{keep.size}")


def shrink_case(case: FuzzCase, category: str, *,
                rtol: float = 1e-6,
                max_rounds: int = 12,
                still_fails: Callable[[FuzzCase], Tuple[bool, str]]
                | None = None) -> FuzzCase:
    """Greedy shrink preserving the failure category.

    ``still_fails`` (mainly for tests) overrides the case runner; it
    must return ``(ok, category)`` like :func:`run_case`.
    """
    check = still_fails or (lambda c: run_case(c, rtol=rtol))

    def fails_same(c: FuzzCase) -> bool:
        ok, cat = check(c)
        return (not ok) and cat == category

    current = case
    for _ in range(max_rounds):
        improved = False
        # 1. try dropping contiguous chunks of the index set
        n = current.n
        for n_chunks in (2, 4, 8):
            if n < 2 * n_chunks or improved:
                break
            bounds = np.linspace(0, n, n_chunks + 1).astype(int)
            for c0, c1 in zip(bounds[:-1], bounds[1:]):
                keep = np.concatenate([np.arange(0, c0),
                                       np.arange(c1, n)])
                if keep.size < 2:
                    continue
                cand = _principal_submatrix(current, keep)
                if fails_same(cand):
                    current = cand
                    improved = True
                    break
        # 2. try a smaller k
        if current.k > 2:
            cand = replace(current, k=current.k // 2)
            if fails_same(cand):
                current = cand
                improved = True
        if not improved:
            break
    return current


def save_reproducer(case: FuzzCase, category: str, path: str) -> str:
    """Persist a failing case as a self-contained ``.npz``."""
    A = case.A.tocsr()
    np.savez_compressed(
        path, name=np.asarray(case.name), category=np.asarray(category),
        n=np.asarray(A.shape[0]), k=np.asarray(case.k),
        seed=np.asarray(case.seed), b=case.b,
        data=A.data, indices=A.indices, indptr=A.indptr)
    return path


def load_reproducer(path: str) -> Tuple[FuzzCase, str]:
    """Load a case saved by :func:`save_reproducer`."""
    z = np.load(path, allow_pickle=False)
    n = int(z["n"])
    A = sp.csr_matrix((z["data"], z["indices"], z["indptr"]), shape=(n, n))
    case = FuzzCase(name=str(z["name"]), A=A, b=np.asarray(z["b"]),
                    k=int(z["k"]), seed=int(z["seed"]))
    return case, str(z["category"])
