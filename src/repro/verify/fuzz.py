"""Seeded differential fuzz harness.

Usage::

    python -m repro.verify.fuzz --seed 0 --budget 60
    python -m repro.verify.fuzz --replay fuzz-failures/<case>.npz

Phase 1 runs every matrix of the Table-I suite (tiny scale) through
:func:`repro.verify.differential.differential_solve` with all invariant
hooks armed, plus the three-way Schur oracle cross-check on the
smaller systems. Phase 2 draws seeded random cases — perturbed suite
matrices and random diagonally-dominant-ish sparse systems — until the
time budget runs out.

A failure is shrunk to a minimal reproducer (same failure category),
saved as ``.npz``, and the exact replay command is printed. Exit code
is the number of distinct failures (0 = clean).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np
import scipy.sparse as sp

from repro.verify.shrink import (
    FuzzCase,
    failure_category,
    load_reproducer,
    run_case,
    save_reproducer,
    shrink_case,
)

__all__ = ["build_suite_cases", "random_case", "run_fuzz", "main"]

#: Above this dimension the dense three-way Schur cross-check is
#: skipped (differential solve + invariants still run).
STAGE_ORACLE_LIMIT = 900


def build_suite_cases(seed: int) -> list[FuzzCase]:
    """One case per Table-I suite matrix at tiny scale."""
    from repro.matrices.suite import generate, suite_names
    rng = np.random.default_rng(seed)
    cases = []
    for name in suite_names():
        gm = generate(name, "tiny")
        A = gm.A.tocsr()
        b = rng.standard_normal(A.shape[0])
        cases.append(FuzzCase(name=name, A=A, b=b, k=4, seed=seed))
    return cases


def random_case(rng: np.random.Generator, index: int,
                base_cases: list[FuzzCase]) -> FuzzCase:
    """Draw one random case: a value-perturbed suite matrix or a fresh
    random sparse system (mostly diagonally dominant, occasionally
    not — the solver must still not crash or lie on hard inputs)."""
    kind = rng.integers(3)
    k = int(rng.choice([2, 4, 8]))
    if kind == 0:
        base = base_cases[int(rng.integers(len(base_cases)))]
        A = base.A.tocsr(copy=True)
        # rescale a random subset of entries across several decades
        m = A.nnz
        hit = rng.random(m) < 0.2
        A.data[hit] *= 10.0 ** rng.uniform(-3, 3, int(hit.sum()))
        name = f"perturbed:{base.name}:{index}"
    else:
        n = int(rng.integers(60, 240))
        density = float(rng.uniform(0.01, 0.05))
        A = sp.random(n, n, density=density, format="csr", random_state=rng)
        A.data = rng.standard_normal(A.data.size)
        rowsum = np.asarray(np.abs(A).sum(axis=1)).ravel()
        if kind == 1:
            diag = rowsum + 1.0          # strictly diagonally dominant
        else:
            diag = rowsum * rng.uniform(0.1, 1.5) + 1e-8
        A = (A + sp.diags(diag)).tocsr()
        name = f"random:{'dd' if kind == 1 else 'loose'}:{index}"
    b = rng.standard_normal(A.shape[0])
    return FuzzCase(name=name, A=A, b=b, k=k, seed=int(rng.integers(2**31)))


def _run_stage_oracles(case: FuzzCase) -> tuple[bool, str]:
    from repro.verify.differential import check_stage_oracles
    try:
        check_stage_oracles(case.A, k=case.k, seed=case.seed)
    except Exception as exc:  # noqa: BLE001 - every failure is a finding
        return False, failure_category(exc)
    return True, ""


def _handle_failure(case: FuzzCase, category: str, out_dir: str,
                    failures: list[tuple[str, str, str]]) -> None:
    print(f"  FAIL [{category}] {case.name} (n={case.n}, k={case.k}) "
          f"— shrinking...", flush=True)
    small = shrink_case(case, category)
    os.makedirs(out_dir, exist_ok=True)
    fname = category.replace(":", "_").replace("/", "_")
    path = os.path.join(out_dir, f"{fname}-{len(failures)}.npz")
    save_reproducer(small, category, path)
    print(f"  shrunk to n={small.n}, k={small.k}; reproducer: {path}")
    print(f"  replay: python -m repro.verify.fuzz --replay {path}")
    failures.append((category, case.name, path))


def run_fuzz(seed: int, budget: float, out_dir: str, *,
             rtol: float = 1e-6) -> int:
    t0 = time.monotonic()
    rng = np.random.default_rng(seed)
    failures: list[tuple[str, str, str]] = []

    print(f"phase 1: suite matrices (seed={seed})")
    suite_cases = build_suite_cases(seed)
    for case in suite_cases:
        t = time.monotonic()
        ok, cat = run_case(case, rtol=rtol)
        if ok and case.n <= STAGE_ORACLE_LIMIT:
            ok, cat = _run_stage_oracles(case)
        status = "ok" if ok else "FAIL"
        print(f"  {case.name:<14} n={case.n:<6} "
              f"{time.monotonic() - t:6.2f}s  {status}", flush=True)
        if not ok:
            _handle_failure(case, cat, out_dir, failures)

    print("phase 2: random cases until budget")
    i = 0
    while time.monotonic() - t0 < budget:
        case = random_case(rng, i, suite_cases)
        ok, cat = run_case(case, rtol=rtol)
        if not ok:
            _handle_failure(case, cat, out_dir, failures)
        i += 1
    print(f"done: {len(suite_cases)} suite + {i} random cases in "
          f"{time.monotonic() - t0:.1f}s, {len(failures)} failure(s)")
    for cat, name, path in failures:
        print(f"  [{cat}] {name} -> {path}")
    return len(failures)


def replay(path: str, *, rtol: float = 1e-6) -> int:
    case, category = load_reproducer(path)
    print(f"replaying {case.name} (n={case.n}, k={case.k}, "
          f"recorded category {category})")
    ok, cat = run_case(case, rtol=rtol)
    if ok:
        print("case passes now")
        return 0
    print(f"still failing: [{cat}]")
    return 1


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Seeded differential fuzzing of the hybrid solver.")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--budget", type=float, default=60.0,
                    help="time budget in seconds (phase 2 stops then)")
    ap.add_argument("--out", default="fuzz-failures",
                    help="directory for shrunk .npz reproducers")
    ap.add_argument("--rtol", type=float, default=1e-6,
                    help="accepted normwise backward error")
    ap.add_argument("--replay", default=None,
                    help="re-run one saved .npz reproducer instead")
    args = ap.parse_args(argv)
    if args.replay:
        return replay(args.replay, rtol=args.rtol)
    return run_fuzz(args.seed, args.budget, args.out, rtol=args.rtol)


if __name__ == "__main__":
    sys.exit(main())
