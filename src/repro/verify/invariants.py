"""Pluggable post-stage invariant checks.

A :class:`Verifier` is handed to :class:`repro.solver.PDSLin` (and the
partitioners) through their ``verify=`` flags. Each pipeline stage then
calls the matching ``after_*`` hook; a failed check raises
:class:`VerificationError` naming the stage, the check and the observed
values. The default :data:`NULL_VERIFIER` makes every hook a no-op, so
production runs pay nothing.

Checks are *structural invariants* — permutations are bijections, DBBD
blocks tile ``A`` exactly, interface maps are injective, factor
products reconstruct their input, Krylov residual histories are true
residuals — cheap enough to run on every CI solve. The expensive
differential comparisons (dense Schur, brute-force padding) live in
:mod:`repro.verify.differential`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

import numpy as np
import scipy.sparse as sp

from repro.verify.oracles import (
    lu_reconstruction_error,
    rhb_cut_cost_reference,
    vertex_weights_reference,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dbbd import DBBDPartition
    from repro.hypergraph.hypergraph import Hypergraph
    from repro.lu.numeric import LUFactors
    from repro.solver.interfaces import SubdomainInterfaces

__all__ = ["VerificationError", "Verifier", "NullVerifier", "NULL_VERIFIER"]


class VerificationError(AssertionError):
    """An invariant or differential check failed.

    ``check`` is the dotted name of the failed check (e.g.
    ``"partition.dbbd-exact"``) so fuzz failures can be bucketed.
    """

    def __init__(self, check: str, detail: str):
        super().__init__(f"[{check}] {detail}")
        self.check = check
        self.detail = detail


class Verifier:
    """Runs post-stage assertions; raises :class:`VerificationError`.

    Parameters
    ----------
    dense_limit:
        Checks requiring a dense reconstruction/solve are skipped for
        block dimensions above this (the structural ones always run).
    rtol:
        Relative tolerance for numeric identity checks (reconstruction,
        residual-history agreement).
    plugins:
        Extra callables ``plugin(check_name, payload_dict)`` invoked
        after every built-in hook — the pluggable extension point for
        experiment-specific assertions; a plugin raises
        :class:`VerificationError` itself to fail the stage.
    """

    enabled = True

    def __init__(self, *, dense_limit: int = 800, rtol: float = 1e-8,
                 plugins: List[Callable] | None = None):
        self.dense_limit = int(dense_limit)
        self.rtol = float(rtol)
        self.plugins = list(plugins or [])
        self.checks_run: List[str] = []

    # -- machinery --------------------------------------------------------

    def _ran(self, check: str, payload: dict | None = None) -> None:
        self.checks_run.append(check)
        for plugin in self.plugins:
            plugin(check, payload or {})

    def _require(self, cond: bool, check: str, detail: str) -> None:
        if not cond:
            raise VerificationError(check, detail)

    def check_permutation(self, perm: np.ndarray, n: int,
                          check: str) -> None:
        """``perm`` must be a bijection of ``range(n)``."""
        perm = np.asarray(perm)
        self._require(perm.shape == (n,), check,
                      f"permutation has shape {perm.shape}, expected ({n},)")
        seen = np.zeros(n, dtype=bool)
        valid = (perm >= 0) & (perm < n)
        self._require(bool(valid.all()), check,
                      "permutation entries out of range")
        seen[perm] = True
        self._require(bool(seen.all()), check,
                      "permutation is not a bijection (repeated entries)")
        self._ran(check)

    # -- partition stage --------------------------------------------------

    def check_vertex_separator(self, adjacency: sp.spmatrix,
                               part: np.ndarray, k: int) -> None:
        """``part`` must be a complete vertex separator of the graph:
        ids in ``{-1} U [0, k)`` and no edge joining two different
        subdomains."""
        part = np.asarray(part)
        self._require(
            bool(((part >= -1) & (part < k)).all()), "ngd.part-range",
            "part ids outside {-1} U [0, k)")
        Ac = sp.coo_matrix(adjacency)
        pi, pj = part[Ac.row], part[Ac.col]
        bad = (pi >= 0) & (pj >= 0) & (pi != pj)
        self._require(not bool(np.any(bad)), "ngd.separator-complete",
                      "an edge couples two different subdomains; the "
                      "separator is incomplete")
        self._ran("ngd.separator-complete", {"k": k})

    def after_partition(self, A: sp.spmatrix, p: "DBBDPartition") -> None:
        """DBBD invariants: the permutation is a bijection, part ids are
        legal, and the D/E/F/C blocks tile the permuted matrix exactly
        (no entry lost, duplicated or displaced)."""
        n = A.shape[0]
        self.check_permutation(p.perm, n, "partition.perm-bijection")
        part = np.asarray(p.part)
        self._require(bool(((part >= -1) & (part < p.k)).all()),
                      "partition.part-range",
                      "part ids outside {-1} U [0, k)")
        p.validate()  # no direct subdomain-subdomain coupling
        self._ran("partition.no-coupling")
        if n <= self.dense_limit * 4:
            try:
                p.validate_exact()
            except AssertionError as exc:
                raise VerificationError("partition.dbbd-exact",
                                        str(exc)) from exc
            self._ran("partition.dbbd-exact", {"n": n, "k": p.k})

    def after_interfaces(self, sub: "SubdomainInterfaces", ns: int) -> None:
        """Interface maps must be injective (strictly increasing) into
        the separator index range, and shapes must agree."""
        for name, idx, dim in (("e_cols", sub.e_cols, sub.E_hat.shape[1]),
                               ("f_rows", sub.f_rows, sub.F_hat.shape[0])):
            check = f"interfaces.{name}-injective"
            idx = np.asarray(idx)
            self._require(idx.size == dim, check,
                          f"{name} has {idx.size} entries for a "
                          f"{dim}-sized block (subdomain {sub.ell})")
            if idx.size:
                self._require(bool(np.all(np.diff(idx) > 0)), check,
                              f"{name} is not strictly increasing "
                              f"(subdomain {sub.ell})")
                self._require(0 <= int(idx[0]) and int(idx[-1]) < ns, check,
                              f"{name} outside separator range "
                              f"(subdomain {sub.ell})")
            self._ran(check)

    # -- LU stages --------------------------------------------------------

    def after_subdomain_lu(self, ell: int, Dp: sp.spmatrix,
                           factors: "LUFactors") -> None:
        n = Dp.shape[0]
        self.check_permutation(factors.perm_r, n, "lu.perm_r-bijection")
        self.check_permutation(factors.perm_c, n, "lu.perm_c-bijection")
        L, U = factors.L, factors.U
        self._require(sp.tril(L, -1).nnz == L.nnz - n,
                      "lu.L-unit-lower",
                      f"L is not unit lower triangular (subdomain {ell})")
        self._require(sp.triu(U).nnz == U.nnz, "lu.U-upper",
                      f"U has entries below the diagonal (subdomain {ell})")
        self._ran("lu.triangular-structure")
        if n <= self.dense_limit:
            err = lu_reconstruction_error(Dp, factors)
            # static pivot perturbation legitimately changes the
            # factored matrix, so reconstruction is bounded, not exact
            self._require(err <= max(self.rtol, 1e-6),
                          "lu.reconstruction",
                          f"L U does not reconstruct D_{ell} "
                          f"(rel err {err:.2e})")
            self._ran("lu.reconstruction", {"ell": ell, "err": err})

    def after_interface_solve(self, L_like: sp.spmatrix, B: sp.spmatrix,
                              X: sp.spmatrix, drop_tol: float) -> None:
        """The blocked solve's output must be finite; with no dropping
        it must satisfy ``L X = B`` (checked densely under the limit)."""
        self._require(bool(np.all(np.isfinite(X.data))),
                      "trsolve.finite", "solution contains NaN/Inf")
        self._ran("trsolve.finite")
        n = L_like.shape[0]
        if drop_tol == 0.0 and n <= self.dense_limit:
            R = L_like @ X - B
            R = sp.csr_matrix(R)
            err = float(np.abs(R.data).max()) if R.nnz else 0.0
            scale = float(np.abs(B.data).max()) if B.nnz else 1.0
            self._require(err <= self.rtol * max(scale, 1.0),
                          "trsolve.residual",
                          f"L X != B (max residual {err:.2e})")
            self._ran("trsolve.residual")

    # -- Schur stage ------------------------------------------------------

    def after_schur_assembly(self, C: sp.spmatrix, S_hat: sp.spmatrix,
                             S_tilde: sp.spmatrix, drop_tol: float) -> None:
        """S~'s pattern must be a subset of S^'s with values unchanged
        on kept entries, diagonal always retained; at ``drop_tol = 0``
        the two must be identical."""
        S_hat = sp.csr_matrix(S_hat).copy()
        S_hat.sum_duplicates()
        S_tilde = sp.csr_matrix(S_tilde)
        self._require(
            bool(np.all(np.isfinite(S_tilde.data))), "schur.finite",
            "S~ contains NaN/Inf")
        if drop_tol <= 0.0:
            diff = S_tilde - S_hat
            err = float(np.abs(diff.data).max()) if diff.nnz else 0.0
            self._require(err == 0.0, "schur.no-drop-identity",
                          f"drop_tol=0 changed S^ (max diff {err:g})")
            self._ran("schur.no-drop-identity")
        else:
            # every kept entry must exist in S^ with the same value;
            # dropping must never *create* or alter entries. Restrict
            # S^ to S~'s pattern before differencing so legitimately
            # dropped entries stay out of the comparison.
            mask = S_tilde.copy()
            mask.data = np.ones_like(mask.data)
            diff = S_hat.multiply(mask) - S_tilde
            diff = sp.csr_matrix(diff)
            err = float(np.abs(diff.data).max()) if diff.nnz else 0.0
            self._require(err == 0.0, "schur.drop-subset",
                          f"dropping created or altered entries of S^ "
                          f"(max diff {err:g})")
            d_hat = S_hat.diagonal()
            d_til = S_tilde.diagonal()
            self._require(bool(np.array_equal(d_hat, d_til)),
                          "schur.diagonal-kept",
                          "dropping altered the diagonal of S^")
            self._ran("schur.drop-subset")
        self._ran("schur.assembly")

    # -- Krylov stage -----------------------------------------------------

    def after_krylov(self, matvec, b: np.ndarray, res) -> None:
        """The recorded residual history must end at the *true* residual
        of the returned iterate — the invariant that catches silent
        Arnoldi breakdown (estimated residual drifting away from
        ``||b - S x||``)."""
        b = np.asarray(b, dtype=np.float64)
        true_r = float(np.linalg.norm(b - matvec(res.x)))
        hist = res.residual_norms
        self._require(len(hist) > 0, "krylov.history-nonempty",
                      "no residual history recorded")
        bnorm = max(float(np.linalg.norm(b)), 1e-300)
        if res.converged:
            gap = abs(hist[-1] - true_r) / bnorm
            self._require(gap <= 1e-6,
                          "krylov.true-residual",
                          f"history end {hist[-1]:.3e} vs true residual "
                          f"{true_r:.3e} (gap {gap:.2e})")
        self._ran("krylov.true-residual", {"true_residual": true_r})

    # -- partitioner weights ----------------------------------------------

    def after_weights(self, H: "Hypergraph", scheme: str,
                      weights: np.ndarray, global_row_nnz: np.ndarray, *,
                      first_bisection: bool,
                      net_internal: np.ndarray | None) -> None:
        """Dynamic w1/w2 weights must match their Section III-C
        definitions, recomputed per-vertex from the net lists."""
        ref = vertex_weights_reference(
            H, scheme, global_row_nnz, first_bisection=first_bisection,
            net_internal=net_internal)
        self._require(
            np.array_equal(np.asarray(weights), ref), "weights.definition",
            f"scheme {scheme!r} weights diverge from their definition "
            f"(got shape {np.asarray(weights).shape}, "
            f"ref shape {ref.shape})")
        self._ran("weights.definition", {"scheme": scheme})

    def after_rhb(self, H0: "Hypergraph", row_part: np.ndarray,
                  col_part: np.ndarray, k: int, metric: str,
                  total_cut_cost: int) -> None:
        """End-of-RHB identities: the recursively accumulated cut cost
        telescopes to the flat unit-cost metric on the final row
        partition, and every interior column's rows all live in its
        part (cut columns are separator)."""
        row_part = np.asarray(row_part)
        col_part = np.asarray(col_part)
        ref = rhb_cut_cost_reference(H0, row_part, k, metric)
        self._require(int(total_cut_cost) == int(ref),
                      "rhb.cut-cost-identity",
                      f"accumulated recursive {metric} cost "
                      f"{total_cut_cost} != flat unit-cost metric {ref}")
        self._ran("rhb.cut-cost-identity", {"metric": metric})
        for j in range(H0.n_nets):
            p = int(col_part[H0.net_ids[j]])
            if p < 0:
                continue
            pins = H0.net_pins(j)
            self._require(
                pins.size == 0 or bool(np.all(row_part[pins] == p)),
                "rhb.column-consistency",
                f"interior column {int(H0.net_ids[j])} assigned to part "
                f"{p} but its rows span parts "
                f"{sorted(set(int(q) for q in row_part[pins]))}")
        self._ran("rhb.column-consistency")

    # -- end-to-end -------------------------------------------------------

    def after_solve(self, A: sp.spmatrix, b: np.ndarray, x: np.ndarray,
                    reported_residual: float) -> None:
        """The result's reported residual norm must be the true relative
        residual of the *original* system."""
        r = float(np.linalg.norm(b - A @ x)
                  / max(float(np.linalg.norm(b)), 1e-300))
        self._require(abs(r - reported_residual) <= 1e-8 + 1e-6 * r,
                      "solve.reported-residual",
                      f"reported {reported_residual:.3e} vs recomputed "
                      f"{r:.3e}")
        self._ran("solve.reported-residual", {"residual": r})


class NullVerifier(Verifier):
    """All hooks no-op; the production default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _noop(self, *a, **kw) -> None:
        return None

    check_permutation = _noop
    check_vertex_separator = _noop
    after_partition = _noop
    after_interfaces = _noop
    after_subdomain_lu = _noop
    after_interface_solve = _noop
    after_schur_assembly = _noop
    after_krylov = _noop
    after_weights = _noop
    after_rhb = _noop
    after_solve = _noop


NULL_VERIFIER = NullVerifier()
