"""Independent reference implementations ("oracles") for every hot
kernel of the pipeline.

Each oracle recomputes a stage's result through a *different* algorithm
— dense linear algebra, scipy's factorizations, or plain Python loops —
so a bug in the production kernel and a bug in its oracle are unlikely
to coincide. The differential layer (:mod:`repro.verify.differential`)
and the test suite compare kernels against these.

Nothing here is performance-sensitive: oracles run in CI and in the
fuzz harness, never on the production path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.lu.triangular import PaddingStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dbbd import DBBDPartition
    from repro.hypergraph.hypergraph import Hypergraph
    from repro.lu.numeric import LUFactors

__all__ = [
    "splu_solve_oracle",
    "dense_triangular_solve_oracle",
    "lu_reconstruction_error",
    "dense_exact_schur",
    "materialize_operator",
    "padded_zeros_bruteforce",
    "cut_metrics_reference",
    "soed_identity_gap",
    "rhb_cut_cost_reference",
    "vertex_weights_reference",
    "normwise_backward_error",
]


# -- direct solves ------------------------------------------------------------


def splu_solve_oracle(A: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Reference solve of ``A x = b`` through scipy's SuperLU with its
    own (COLAMD) ordering — independent of the repo's ordering and
    factorization choices."""
    lu = spla.splu(sp.csc_matrix(A))
    return lu.solve(np.asarray(b, dtype=np.float64))


def dense_triangular_solve_oracle(L: sp.spmatrix,
                                  B: sp.spmatrix | np.ndarray) -> np.ndarray:
    """Dense reference for ``L^{-1} B`` (no blocking, no padding)."""
    Ld = L.toarray() if sp.issparse(L) else np.asarray(L, dtype=np.float64)
    Bd = B.toarray() if sp.issparse(B) else np.asarray(B, dtype=np.float64)
    return np.linalg.solve(Ld, Bd)


def lu_reconstruction_error(A: sp.spmatrix, factors: "LUFactors") -> float:
    """Relative max-norm error of ``L U`` against the permuted input,
    ``A[perm_r, :][:, perm_c]`` — the defining identity of
    :class:`repro.lu.LUFactors`."""
    A = sp.csr_matrix(A)
    ref = A[factors.perm_r][:, factors.perm_c].tocsr()
    diff = (factors.L @ factors.U).tocsr() - ref
    scale = float(np.abs(ref.data).max()) if ref.nnz else 1.0
    err = float(np.abs(diff.data).max()) if diff.nnz else 0.0
    return err / max(scale, 1e-300)


# -- Schur complement ---------------------------------------------------------


def dense_exact_schur(p: "DBBDPartition") -> np.ndarray:
    """Dense exact Schur complement ``S = C - sum_l F_l D_l^{-1} E_l``.

    Works on the *uncompressed* blocks straight off the DBBD partition,
    with dense solves — independent of interface compression, blocked
    triangular solves, and the update-scatter path.
    """
    S = p.C().toarray().astype(np.float64)
    for ell in range(p.k):
        D = p.D(ell).toarray()
        if D.size == 0:
            continue
        E = p.E(ell).toarray()
        F = p.F(ell).toarray()
        S -= F @ np.linalg.solve(D, E)
    return S


def materialize_operator(matvec: Callable[[np.ndarray], np.ndarray],
                         n: int) -> np.ndarray:
    """Materialize a linear operator by applying it to identity columns."""
    out = np.zeros((n, n))
    for j in range(n):
        e = np.zeros(n)
        e[j] = 1.0
        out[:, j] = matvec(e)
    return out


# -- padded zeros -------------------------------------------------------------


def padded_zeros_bruteforce(G: sp.spmatrix,
                            parts: Sequence[np.ndarray]) -> PaddingStats:
    """Brute-force Eq. (14): dense boolean pattern + Python loops.

    Counts *stored* entries (explicit zeros included), matching the
    symbolic semantics of :func:`repro.lu.padded_zeros`.
    """
    Gc = sp.coo_matrix(G)
    n = Gc.shape[0]
    stored = np.zeros(Gc.shape, dtype=bool)
    stored[Gc.row, Gc.col] = True
    padded: list[int] = []
    entries: list[int] = []
    for cols in parts:
        rows_active = [i for i in range(n)
                       if any(stored[i, j] for j in cols)]
        block = len(rows_active) * len(cols)
        pad = sum(1 for i in rows_active for j in cols if not stored[i, j])
        padded.append(pad)
        entries.append(block)
    return PaddingStats(total_padded=int(sum(padded)),
                        total_block_entries=int(sum(entries)),
                        per_part_padded=tuple(padded),
                        per_part_entries=tuple(entries))


# -- cutsize metrics ----------------------------------------------------------


def cut_metrics_reference(H: "Hypergraph", part: np.ndarray, k: int,
                          *, unit_costs: bool = False) -> Dict[str, int]:
    """All three cut metrics recomputed directly from the part vector
    with plain Python loops (Eqs. 7-9), independent of the vectorized
    ``net_connectivities`` path."""
    part = np.asarray(part)
    con1 = cnet = soed = 0
    for j in range(H.n_nets):
        pins = H.net_pins(j)
        touched = {int(part[v]) for v in pins}
        lam = len(touched)
        c = 1 if unit_costs else int(H.net_costs[j])
        con1 += c * max(lam - 1, 0)
        if lam > 1:
            cnet += c
            soed += c * lam
    return {"con1": con1, "cnet": cnet, "soed": soed}


def soed_identity_gap(H: "Hypergraph", part: np.ndarray, k: int) -> int:
    """``soed - (con1 + cnet)`` over the same costs — identically zero
    by Eq. (9) = Eq. (7) + Eq. (8); any nonzero gap is a metric bug."""
    m = cut_metrics_reference(H, part, k)
    return m["soed"] - (m["con1"] + m["cnet"])


def rhb_cut_cost_reference(H0: "Hypergraph", row_part: np.ndarray, k: int,
                           metric: str) -> int:
    """Flat reference for RHB's accumulated recursive cut cost.

    Net splitting (con1), net discarding (cnet) and the cost-2 /
    halve-on-cut construction (soed) each telescope to the flat metric
    evaluated with *unit* costs on the final leaf partition of the rows:
    con1 charges a net once per extra part, cnet once in total, and
    soed ``2 + (lambda - 2) = lambda``. This is the identity RHB's
    per-bisection accounting must satisfy.
    """
    return cut_metrics_reference(H0, row_part, k, unit_costs=True)[metric]


# -- dynamic weights ----------------------------------------------------------


def vertex_weights_reference(H: "Hypergraph", scheme: str,
                             global_row_nnz: np.ndarray, *,
                             first_bisection: bool,
                             net_internal: np.ndarray | None = None
                             ) -> np.ndarray:
    """Per-definition recomputation of the w1/w2 weight schemes
    (Section III-C) with explicit loops over each vertex's net list."""
    n = H.n_vertices
    if scheme == "unit" or first_bisection:
        return np.ones((n, 1), dtype=np.int64)
    w1 = np.empty(n, dtype=np.int64)
    for v in range(n):
        nets = H.vertex_net_list(v)
        if net_internal is None:
            w1[v] = nets.size
        else:
            w1[v] = int(sum(1 for j in nets if net_internal[j]))
    w1 = np.maximum(w1, 1)
    w2 = np.maximum(np.asarray(global_row_nnz, dtype=np.int64), 1)
    if scheme == "w1":
        return w1.reshape(n, 1)
    if scheme == "w2":
        return w2.reshape(n, 1)
    return np.stack([w1, w2], axis=1)


# -- residual criteria --------------------------------------------------------


def normwise_backward_error(A: sp.spmatrix, x: np.ndarray,
                            b: np.ndarray) -> float:
    """``||b - A x|| / (||A||_1 ||x|| + ||b||)`` — the scale-free
    acceptance criterion of the differential checks (robust against
    ill-conditioning, unlike a direct solution comparison)."""
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = b - A @ x
    denom = float(spla.norm(A, 1) * np.linalg.norm(x) + np.linalg.norm(b))
    return float(np.linalg.norm(r)) / max(denom, 1e-300)
