"""repro — reproduction of "On Partitioning and Reordering Problems in a
Hierarchically Parallel Hybrid Linear Solver" (Yamazaki, Li, Rouet,
Uçar; IPDPSW 2013).

Public surface (see README for the architecture overview):

- :mod:`repro.core` — RHB partitioning, DBBD forms, RHS reordering;
- :mod:`repro.solver` — the PDSLin-style hybrid Schur solver;
- :mod:`repro.hypergraph` / :mod:`repro.graphs` — partitioning substrates;
- :mod:`repro.lu` / :mod:`repro.ordering` — sparse direct-method substrate;
- :mod:`repro.matrices` — synthetic Table-I matrix suite;
- :mod:`repro.parallel` — simulated distributed machine;
- :mod:`repro.resilience` — fault injection and breakdown recovery;
- :mod:`repro.numerics` — equilibration, static-pivot matching,
  condition estimation, certified iterative refinement;
- :mod:`repro.service` — long-lived serving layer (session cache,
  micro-batched request queue) — start one with :func:`repro.serve`;
- :mod:`repro.experiments` — per-table/figure harnesses.

One-shot solves need no class API at all: :func:`repro.solve` routes
keyword options to :class:`PDSLinConfig` / :class:`RuntimeOptions` by
field name and runs the whole pipeline.
"""

from repro.api import serve, solve
from repro.core import DBBDPartition, RHBResult, build_dbbd, rhb_partition
from repro.graphs import nested_dissection_partition
from repro.matrices import (
    generate,
    generate_robust,
    robust_suite_names,
    suite_names,
)
from repro.numerics import CertifiedAccuracy, backward_errors
from repro.resilience import FaultPlan, FaultSpec, RecoveryReport, RetryPolicy
from repro.solver import (
    BlockResult,
    PDSLin,
    PDSLinConfig,
    PDSLinResult,
    RuntimeOptions,
)

__version__ = "1.0.0"

__all__ = [
    "solve", "serve",
    "rhb_partition", "build_dbbd", "DBBDPartition", "RHBResult",
    "PDSLin", "PDSLinConfig", "PDSLinResult", "BlockResult",
    "RuntimeOptions",
    "FaultPlan", "FaultSpec", "RecoveryReport", "RetryPolicy",
    "CertifiedAccuracy", "backward_errors",
    "nested_dissection_partition",
    "generate", "suite_names", "generate_robust", "robust_suite_names",
    "__version__",
]
