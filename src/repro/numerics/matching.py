"""MC64-style maximum-product bipartite matching (static pivoting).

Threshold-pivoted subdomain factorizations break down *reactively*: a
tiny pivot is only discovered mid-factorization, after which the
recovery ladder retries with stronger pivoting or perturbs the pivot.
The production alternative (Duff-Koster MC64, used by SuperLU_DIST and
MUMPS) is *proactive*: permute the rows of ``A`` so the product of
diagonal magnitudes is maximized before any factorization starts, which
makes diagonal-preferring pivoting numerically safe.

Maximizing ``prod_j |a_{p(j), j}|`` over permutations ``p`` is the
classic assignment problem on costs

    c_ij = log(max_i |a_ij|) - log|a_ij|  >=  0,

solved here by shortest augmenting paths with dual potentials (the
sparse Jonker-Volgenant scheme: one Dijkstra search per row, matched
edges kept tight under the duals). Structurally deficient matrices get
a maximum (not perfect) matching; the free rows are paired with free
columns arbitrarily and reported via ``matched_fraction``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils import check_csr

__all__ = ["MatchingResult", "maximum_product_matching"]


@dataclass
class MatchingResult:
    """A row permutation putting large entries on the diagonal.

    ``row_perm[k]`` is the original row to place at position ``k``, so
    ``A[row_perm, :]`` has the matched entries on its diagonal.
    ``log10_product`` is ``sum_j log10 |a_{row_perm[j], j}|`` over
    matched diagonal entries; ``matched_fraction < 1`` flags structural
    deficiency (some diagonal positions have no nonzero available).
    ``identity`` is set when the input diagonal was already optimal and
    the search was skipped.
    """

    row_perm: np.ndarray
    matched_fraction: float
    log10_product: float
    identity: bool = False

    @property
    def is_perfect(self) -> bool:
        return self.matched_fraction == 1.0

    def apply(self, A: sp.spmatrix) -> sp.csr_matrix:
        """Return ``P A`` (rows permuted to the matched order)."""
        return check_csr(A)[self.row_perm].tocsr()


def _column_abs_max(A: sp.csc_matrix) -> np.ndarray:
    out = np.zeros(A.shape[1])
    absdata = np.abs(A.data)
    for j in range(A.shape[1]):
        lo, hi = A.indptr[j], A.indptr[j + 1]
        if hi > lo:
            out[j] = absdata[lo:hi].max()
    return out


def _diagonal_already_optimal(A: sp.csr_matrix,
                              col_max: np.ndarray) -> bool:
    """True when every |a_ii| equals its column max — the identity
    matching then has cost 0, which is globally optimal (all costs are
    non-negative). This fast path covers diagonally dominant systems
    (most of the Table-I suite) without a single Dijkstra search."""
    diag = np.abs(A.diagonal())
    return bool(np.all(diag >= col_max * (1.0 - 1e-12)))


def maximum_product_matching(A: sp.spmatrix) -> MatchingResult:
    """Match each column to a row maximizing the diagonal product.

    Runs on ``log|a_ij|`` so products become sums; explicit zeros are
    treated as absent edges. Complexity is one heap-based Dijkstra per
    row over the sparse pattern — ``O(n * nnz log n)`` worst case, with
    an O(nnz) fast path for already-dominant diagonals.
    """
    A = check_csr(A)
    n_rows, n_cols = A.shape
    if n_rows != n_cols:
        raise ValueError(f"matching needs a square matrix, got {A.shape}")
    n = n_rows
    if n == 0:
        return MatchingResult(row_perm=np.empty(0, dtype=np.int64),
                              matched_fraction=1.0, log10_product=0.0,
                              identity=True)
    col_max = _column_abs_max(A.tocsc())
    if _diagonal_already_optimal(A, col_max):
        diag = np.abs(A.diagonal())
        logprod = float(np.log10(diag[diag > 0]).sum())
        return MatchingResult(row_perm=np.arange(n, dtype=np.int64),
                              matched_fraction=1.0, log10_product=logprod,
                              identity=True)

    # Edge costs c_ij = log(col_max[j]) - log|a_ij| >= 0, CSR by row.
    mask = A.data != 0.0
    data = np.abs(A.data[mask])
    indices = A.indices[mask].astype(np.int64)
    row_ids = np.repeat(np.arange(n), np.diff(A.indptr))
    counts = np.bincount(row_ids[mask], minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    with np.errstate(divide="ignore"):
        cost = np.log(col_max[indices]) - np.log(data)

    inf = np.inf
    match_row = np.full(n, -1, dtype=np.int64)   # row -> matched col
    match_col = np.full(n, -1, dtype=np.int64)   # col -> matched row
    v = np.zeros(n)                              # column potentials
    u = np.zeros(n)                              # row potentials
    unmatched_rows: list[int] = []

    dist = np.empty(n)
    prev_row = np.empty(n, dtype=np.int64)
    scanned = np.empty(n, dtype=bool)
    row_entry_dist = np.empty(n)                 # dist at which a row joined

    def relax(i: int, base: float, heap: list) -> None:
        for t in range(indptr[i], indptr[i + 1]):
            j = int(indices[t])
            if scanned[j]:
                continue
            nd = base + cost[t] - u[i] - v[j]
            if nd < dist[j] - 1e-300:
                dist[j] = nd
                prev_row[j] = i
                heapq.heappush(heap, (nd, j))

    for k in range(n):
        dist.fill(inf)
        prev_row.fill(-1)
        scanned.fill(False)
        heap: list[tuple[float, int]] = []
        tree_rows = [k]
        row_entry_dist[k] = 0.0
        relax(k, 0.0, heap)
        sink = -1
        lowest = 0.0
        while heap:
            d, j = heapq.heappop(heap)
            if scanned[j] or d > dist[j]:
                continue
            scanned[j] = True
            lowest = d
            if match_col[j] < 0:
                sink = j
                break
            i2 = int(match_col[j])
            tree_rows.append(i2)
            row_entry_dist[i2] = d
            relax(i2, d, heap)  # matched edges are tight: traversal is free

        if sink < 0:
            # structurally deficient: no augmenting path from row k
            unmatched_rows.append(k)
            continue

        # dual update keeps feasibility and makes the path tight
        for i in tree_rows:
            u[i] += lowest - row_entry_dist[i]
        sc = np.flatnonzero(scanned)
        v[sc] -= lowest - dist[sc]
        # augment along the alternating path ending at `sink`
        j = sink
        while True:
            i = int(prev_row[j])
            j_next = int(match_row[i])
            match_row[i] = j
            match_col[j] = i
            if i == k:
                break
            j = j_next

    matched = int(np.count_nonzero(match_col >= 0))
    if unmatched_rows:
        free_cols = np.flatnonzero(match_col < 0)
        for i, j in zip(unmatched_rows, free_cols.tolist()):
            match_row[i] = j
            match_col[j] = i

    row_perm = match_col.astype(np.int64)  # position j gets its matched row
    diag = np.abs(A[row_perm].diagonal())
    logprod = float(np.log10(diag[diag > 0]).sum()) if np.any(diag > 0) \
        else -np.inf
    return MatchingResult(row_perm=row_perm,
                          matched_fraction=matched / n,
                          log10_product=logprod)
