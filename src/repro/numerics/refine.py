"""Backward errors and certified fixed-precision iterative refinement.

A residual norm alone says little: ``||b - A x||`` can look small while
individual equations are satisfied to no digits at all. The quantities
that actually certify a solve (Oettli-Prager / Higham, and what
LAPACK's expert drivers report) are

- the *componentwise* backward error
  ``berr = max_i |r_i| / (|A| |x| + |b|)_i`` — the smallest relative
  perturbation of A and b, entry by entry, for which ``x`` is exact;
- the *normwise* backward error
  ``nberr = ||r||_inf / (||A||_inf ||x||_inf + ||b||_inf)``;
- a forward-error bound ``ferr <~ cond(A) * berr``.

Fixed-precision iterative refinement drives ``berr`` down to O(eps):
repeat ``d = solve(r); x += d`` while the backward error keeps
shrinking. Each step multiplies the error by roughly
``eps * cond(A)``-ish contraction factor of the inner solver, so
either it converges in a few steps or it stagnates — and stagnation is
itself a diagnosis (the inner solver is too weak), which the caller can
escalate on (PDSLin rebuilds the Schur preconditioner) before giving
up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["CertifiedAccuracy", "backward_errors", "refine",
           "refine_block"]

# one refinement step must shrink berr at least this much, or we call
# it stagnation (Higham's rho_thresh in the LAPACK refinement papers)
STALL_RATIO = 0.5


def backward_errors(A: sp.spmatrix, x: np.ndarray, b: np.ndarray,
                    r: np.ndarray | None = None) -> tuple[float, float]:
    """(componentwise, normwise) backward error of ``x`` for ``A x = b``.

    A zero denominator with a zero residual contributes 0 (the equation
    is exactly satisfied); with a nonzero residual it contributes
    ``inf`` (no perturbation of a zero row can explain the residual).
    """
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if r is None:
        r = b - A @ x
    absr = np.abs(r)
    denom = np.abs(A) @ np.abs(x) + np.abs(b)
    live = denom > 0.0
    berr = float((absr[live] / denom[live]).max()) if np.any(live) else 0.0
    if np.any(absr[~live] > 0.0):
        berr = float("inf")
    norm_a = float(np.abs(A).sum(axis=1).max()) if A.shape[0] else 0.0
    ndenom = norm_a * float(np.abs(x).max(initial=0.0)) \
        + float(np.abs(b).max(initial=0.0))
    rinf = float(absr.max(initial=0.0))
    nberr = rinf / ndenom if ndenom > 0.0 else (0.0 if rinf == 0.0
                                                else float("inf"))
    return berr, nberr


@dataclass
class CertifiedAccuracy:
    """Quantified accuracy of one solve, attached to the result.

    ``certified`` means the componentwise backward error reached
    ``certify_tol`` — the solution is exact for a system within that
    relative distance of the one posed. ``ferr_bound`` is the usual
    ``cond * berr_norm`` first-order forward-error bound (with the
    condition number itself an estimate, so a diagnostic, not a proof).
    ``escalations`` counts refinement stalls that were escalated into
    the resilience ladder (preconditioner rebuild) before continuing.
    """

    berr: float
    nberr: float
    cond_est: float
    ferr_bound: float
    refine_steps: int
    certified: bool
    certify_tol: float
    stagnated: bool = False
    escalations: int = 0
    berr_history: list[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "berr": self.berr,
            "nberr": self.nberr,
            "cond_est": self.cond_est,
            "ferr_bound": self.ferr_bound,
            "refine_steps": self.refine_steps,
            "certified": self.certified,
            "certify_tol": self.certify_tol,
            "stagnated": self.stagnated,
            "escalations": self.escalations,
            "berr_history": [float(v) for v in self.berr_history],
        }

    def describe(self) -> str:
        tag = "CERTIFIED" if self.certified else "UNCERTIFIED"
        return (f"accuracy: {tag} berr={self.berr:.2e} "
                f"nberr={self.nberr:.2e} cond~{self.cond_est:.2e} "
                f"ferr<~{self.ferr_bound:.2e} "
                f"steps={self.refine_steps}"
                + (f" escalations={self.escalations}"
                   if self.escalations else ""))


def refine(A: sp.spmatrix, b: np.ndarray, x0: np.ndarray,
           solve: Callable[[np.ndarray], np.ndarray], *,
           tol: float = 1e-14,
           certify_tol: float = 1e-12,
           maxiter: int = 4,
           cond_est: float = float("nan"),
           on_stall: Optional[Callable[[], bool]] = None,
           ) -> tuple[np.ndarray, CertifiedAccuracy]:
    """Refine ``x0`` until the componentwise backward error reaches
    ``tol``, stagnates, or ``maxiter`` correction solves are spent.

    ``solve(r)`` must return an (approximate) solution of ``A d = r``.
    On stagnation, ``on_stall()`` is consulted: returning True means
    the caller strengthened the inner solver (e.g. rebuilt the Schur
    preconditioner with no dropping) and refinement should continue;
    returning False — or a second stall — ends refinement. The best
    iterate seen (smallest berr) is the one returned.
    """
    b = np.asarray(b, dtype=np.float64)
    x = np.asarray(x0, dtype=np.float64).copy()
    berr, nberr = backward_errors(A, x, b)
    history = [berr]
    best_x, best = x, (berr, nberr)
    steps = 0
    stagnated = False
    escalations = 0
    while berr > tol and steps < maxiter:
        r = b - A @ x
        d = np.asarray(solve(r), dtype=np.float64)
        if not np.all(np.isfinite(d)):
            stagnated = True
            break
        x = x + d
        steps += 1
        berr, nberr = backward_errors(A, x, b)
        history.append(berr)
        if berr < best[0]:
            best_x, best = x, (berr, nberr)
        if berr > STALL_RATIO * history[-2]:
            if on_stall is not None and escalations == 0 \
                    and berr > certify_tol and on_stall():
                escalations += 1
                continue
            stagnated = berr > tol
            break
    berr, nberr = best
    x = best_x
    ferr = cond_est * nberr if np.isfinite(cond_est) else float("nan")
    acc = CertifiedAccuracy(
        berr=berr, nberr=nberr, cond_est=float(cond_est), ferr_bound=ferr,
        refine_steps=steps, certified=bool(berr <= certify_tol),
        certify_tol=certify_tol, stagnated=stagnated,
        escalations=escalations, berr_history=history)
    return x, acc


def refine_block(A: sp.spmatrix, B: np.ndarray, X0: np.ndarray,
                 solve_block: Callable[[np.ndarray], np.ndarray], *,
                 tol: float = 1e-14,
                 certify_tol: float = 1e-12,
                 maxiter: int = 4,
                 cond_est: float = float("nan"),
                 on_stall: Optional[Callable[[], bool]] = None,
                 ) -> tuple[np.ndarray, list[CertifiedAccuracy]]:
    """Columnwise :func:`refine` over a block of right-hand sides.

    ``solve_block(R)`` must return (approximate) solutions of
    ``A D = R`` for a residual matrix whose columns are the still-active
    right-hand sides; one such block correction solve is spent per
    refinement sweep instead of one solve per column. Each column runs
    the exact :func:`refine` state machine — same stall test, best-
    iterate tracking, and non-finite handling — so when the block
    correction solve is columnwise bit-identical to the single-column
    solve (the direct-path contract), the refined columns are
    bit-identical to per-column :func:`refine`. ``on_stall`` is shared:
    the first stalled column consults it (a global escalation such as a
    preconditioner rebuild), matching the sequential-column behaviour
    where one escalation serves all later columns.
    """
    B = np.asarray(B, dtype=np.float64)
    X = np.asarray(X0, dtype=np.float64).copy()
    p = B.shape[1]
    if p == 0:
        return X, []
    berr = np.empty(p)
    nberr = np.empty(p)
    R = B - A @ X
    for j in range(p):
        berr[j], nberr[j] = backward_errors(A, X[:, j], B[:, j], r=R[:, j])
    history = [[float(berr[j])] for j in range(p)]
    best_X = X.copy()
    best = [(float(berr[j]), float(nberr[j])) for j in range(p)]
    steps = np.zeros(p, dtype=np.int64)
    stagnated = np.zeros(p, dtype=bool)
    escalations = np.zeros(p, dtype=np.int64)
    active = (berr > tol) if maxiter > 0 else np.zeros(p, dtype=bool)
    while active.any():
        idx = np.flatnonzero(active)
        R = B[:, idx] - A @ X[:, idx]
        D = np.asarray(solve_block(R), dtype=np.float64)
        finite = np.isfinite(D).all(axis=0)
        bad = idx[~finite]
        stagnated[bad] = True
        active[bad] = False
        upd = idx[finite]
        if upd.size == 0:
            continue
        X[:, upd] = X[:, upd] + D[:, finite]
        steps[upd] += 1
        Rn = B[:, upd] - A @ X[:, upd]
        for pos, j in enumerate(upd):
            bj, nj = backward_errors(A, X[:, j], B[:, j], r=Rn[:, pos])
            history[j].append(bj)
            if bj < best[j][0]:
                best_X[:, j] = X[:, j]
                best[j] = (bj, nj)
            berr[j] = bj
            if bj > STALL_RATIO * history[j][-2]:
                if on_stall is not None and escalations[j] == 0 \
                        and bj > certify_tol and on_stall():
                    escalations[j] += 1
                else:
                    stagnated[j] = bj > tol
                    active[j] = False
                    continue
            active[j] = bool(bj > tol) and bool(steps[j] < maxiter)
    accs = []
    for j in range(p):
        bj, nj = best[j]
        ferr = cond_est * nj if np.isfinite(cond_est) else float("nan")
        accs.append(CertifiedAccuracy(
            berr=bj, nberr=nj, cond_est=float(cond_est), ferr_bound=ferr,
            refine_steps=int(steps[j]), certified=bool(bj <= certify_tol),
            certify_tol=certify_tol, stagnated=bool(stagnated[j]),
            escalations=int(escalations[j]), berr_history=history[j]))
    return best_X, accs
