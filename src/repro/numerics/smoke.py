"""The numerics-smoke scenario: certified solves of the stress suite.

This is the numerics counterpart of :mod:`repro.obs.smoke` /
:mod:`repro.resilience.chaos` and what the CI ``numerics-smoke`` job
runs: every matrix of ``ROBUST_SUITE`` (geometrically graded scaling,
shifted near-singular circuit) through the full PDSLin pipeline,
asserting that

- with the numerics layer on (the default) every solve converges and
  is *certified*: componentwise backward error <= 1e-12;
- condition estimates and refinement counters are present in the
  tracer (they land in ``metrics.json`` artifacts);
- with the numerics layer off, the same systems visibly fail — no
  convergence, or a backward error above 1e-8 — demonstrating that the
  layer is load-bearing, not decorative.

Run directly::

    PYTHONPATH=src python -m repro.numerics.smoke --metrics out.json
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.numerics.refine import backward_errors
from repro.obs.tracer import Tracer

__all__ = ["NumericsRun", "run_numerics_smoke",
           "CERTIFY_TOL", "UNPROTECTED_BERR"]

CERTIFY_TOL = 1e-12      # required berr with the numerics layer on
UNPROTECTED_BERR = 1e-8  # berr the unprotected pipeline must exceed
SMOKE_SCALE = "tiny"


@dataclass
class NumericsRun:
    """A completed numerics smoke with everything the checks need."""

    tracer: Tracer
    results: dict[str, dict] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(self.checks.values())


def run_numerics_smoke(*, k: int = 4, seed: int = 0,
                       scale: str = SMOKE_SCALE,
                       check_unprotected: bool = True) -> NumericsRun:
    """Solve every ``ROBUST_SUITE`` matrix end-to-end and verify the
    certification contract (see module docstring). ``check_unprotected``
    also runs each system with ``numerics=False`` to confirm the
    baseline pipeline actually fails on it."""
    # imported here so `repro.numerics` stays importable without
    # pulling in the whole solver stack
    from repro.matrices import generate_robust, robust_suite_names
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    tracer = Tracer()
    run = NumericsRun(tracer=tracer)
    rng = np.random.default_rng(seed)
    for name in robust_suite_names():
        gm = generate_robust(name, scale)
        b = gm.A @ rng.standard_normal(gm.n)
        res = PDSLin(gm.A, PDSLinConfig(k=k, seed=seed),
                     runtime=RuntimeOptions(tracer=tracer)).solve(b)
        acc = res.accuracy
        entry = {
            "n": gm.n,
            "converged": bool(res.converged),
            "certified": bool(res.certified),
            "berr": float(acc.berr) if acc else float("nan"),
            "cond_est": float(acc.cond_est) if acc else float("nan"),
            "refine_steps": int(acc.refine_steps) if acc else 0,
        }
        run.checks[f"{name}:certified"] = bool(
            res.converged and res.certified
            and acc is not None and acc.berr <= CERTIFY_TOL)
        if check_unprotected:
            try:
                bare = PDSLin(gm.A, PDSLinConfig(
                    k=k, seed=seed, numerics=False)).solve(b)
                berr0 = backward_errors(gm.A, bare.x, b)[0]
                failed = (not bare.converged) or berr0 > UNPROTECTED_BERR
            except Exception as exc:  # breakdown counts as failure too
                berr0 = float("inf")
                failed = True
                entry["unprotected_error"] = type(exc).__name__
            entry["unprotected_berr"] = float(berr0)
            run.checks[f"{name}:unprotected-fails"] = bool(failed)
        run.results[name] = entry
    counters = tracer.counters
    run.checks["cond_counters_present"] = bool(
        counters.get("cond_est_subdomain", 0) > 0
        and counters.get("cond_est_schur", 0) > 0)
    run.checks["refine_counters_present"] = bool(
        "refine_steps" in counters and "refine_certified" in counters)
    return run


def main(argv: list[str] | None = None) -> int:
    """CLI: run the numerics smoke and exit non-zero on any failure."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--scale", default=SMOKE_SCALE,
                    choices=("tiny", "small", "medium"))
    ap.add_argument("--metrics", default=None,
                    help="write the tracer's metrics.json here")
    ap.add_argument("--skip-unprotected", action="store_true",
                    help="skip the numerics=False contrast runs")
    args = ap.parse_args(argv)
    run = run_numerics_smoke(k=args.k, seed=args.seed, scale=args.scale,
                             check_unprotected=not args.skip_unprotected)
    for name, entry in run.results.items():
        line = (f"{name:<16} n={entry['n']:<6} "
                f"converged={entry['converged']} "
                f"certified={entry['certified']} "
                f"berr={entry['berr']:.2e} "
                f"cond~{entry['cond_est']:.2e} "
                f"refine_steps={entry['refine_steps']}")
        if "unprotected_berr" in entry:
            line += f"  | unprotected berr={entry['unprotected_berr']:.2e}"
        print(line)
    for name, passed in run.checks.items():
        print(f"check {name:<28} {'PASS' if passed else 'FAIL'}")
    if args.metrics:
        from pathlib import Path

        from repro.obs.export import write_metrics
        Path(args.metrics).parent.mkdir(parents=True, exist_ok=True)
        write_metrics(run.tracer, args.metrics)
        print(f"metrics written to {args.metrics}")
    return 0 if run.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
