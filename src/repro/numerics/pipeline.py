"""The solver-facing numerics pre-pass: scaling + static-pivot matching.

Composes :func:`repro.numerics.equilibrate.ruiz_equilibrate` and
:func:`repro.numerics.matching.maximum_product_matching` into one
transform of the posed system ``A x = b`` into the working system

    A_w y = b_w,    A_w = P R A C,    b_w = P R b,    x = C y,

where ``R``/``C`` are the Ruiz scalings and ``P`` permutes the
maximum-product matching onto the diagonal. Everything downstream of
the transform — DBBD partitioning, subdomain LU, interface solves,
Schur assembly, the Krylov solve — operates on ``A_w`` only; the
solver maps right-hand sides in and solutions back out through this
object. The column space is never permuted, so solution vectors keep
their original indexing and only the diagonal scaling ``C`` applies on
the way out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.numerics.equilibrate import EquilibrationResult, ruiz_equilibrate
from repro.numerics.matching import MatchingResult, maximum_product_matching
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import check_csr

__all__ = ["SystemTransform", "prepare_system", "retarget_system"]


@dataclass
class SystemTransform:
    """Diagonal scalings plus the matching row permutation.

    ``row_scale``/``col_scale`` are all-ones and ``row_perm`` is the
    identity for whichever stages were disabled, so the transform is
    always safe to apply unconditionally.
    """

    A_work: sp.csr_matrix
    row_scale: np.ndarray
    col_scale: np.ndarray
    row_perm: np.ndarray
    equilibration: EquilibrationResult | None = None
    matching: MatchingResult | None = None

    @property
    def is_identity(self) -> bool:
        n = self.A_work.shape[0]
        return (self.equilibration is None or
                (np.all(self.row_scale == 1.0)
                 and np.all(self.col_scale == 1.0))) and \
            (self.matching is None
             or bool(np.array_equal(self.row_perm, np.arange(n))))

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """``P R b`` — the working right-hand side. Accepts a 1-D
        vector or a 2-D block (one column per right-hand side); the
        transform is diagonal + row permutation, so each block column
        is bit-identical to scaling it alone."""
        b = np.asarray(b, dtype=np.float64)
        scale = self.row_scale[:, None] if b.ndim == 2 else self.row_scale
        return (scale * b)[self.row_perm]

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """``C y`` — map a working-system solution back to ``A x = b``
        (columnwise on a 2-D block)."""
        y = np.asarray(y, dtype=np.float64)
        scale = self.col_scale[:, None] if y.ndim == 2 else self.col_scale
        return scale * y

    def transform_matrix(self, A: sp.spmatrix) -> sp.csr_matrix:
        """``P R A C`` for a matrix with the same pattern (refreshed
        values): reuses the stored permutation, recomputes nothing."""
        A = check_csr(A)
        W = sp.diags(self.row_scale) @ A @ sp.diags(self.col_scale)
        return W.tocsr()[self.row_perm].tocsr()

    def to_dict(self) -> dict:
        out: dict = {
            "equilibrated": self.equilibration is not None,
            "matched": self.matching is not None,
        }
        if self.equilibration is not None:
            out["equilibrate_iters"] = int(self.equilibration.iterations)
            out["equilibrate_converged"] = bool(self.equilibration.converged)
        if self.matching is not None:
            out["matching_identity"] = bool(self.matching.identity)
            out["matched_fraction"] = float(self.matching.matched_fraction)
        return out


def prepare_system(A: sp.spmatrix, *, equilibrate: bool = True,
                   matching: bool = True, equilibrate_iters: int = 20,
                   equilibrate_tol: float = 1e-2,
                   matching_threshold: float = 1e-3,
                   tracer: Tracer = NULL_TRACER) -> SystemTransform:
    """Build the working system for ``A`` (see module docstring).

    Tracer spans: one ``equilibrate`` span (counter
    ``equilibrate_iters``) and one ``matching`` span (counters
    ``matching_identity`` 0/1, ``matched_diagonal``, or
    ``matching_skipped``). Matching runs on the *scaled* matrix —
    after equilibration all magnitudes are O(1), which is exactly the
    regime where log-product matching is well-posed.

    Matching is *gated on need* (the MUMPS-style "auto" policy): a row
    permutation helps when the scaled diagonal has weak or missing
    pivots, but on near-symmetric matrices with an adequate diagonal it
    destroys structure the dropped Schur preconditioner relies on. The
    permutation is therefore only computed and applied when some scaled
    ``|a_ii| < matching_threshold`` (a structurally zero diagonal
    always qualifies).
    """
    A = check_csr(A)
    n = A.shape[0]
    row_scale = np.ones(n)
    col_scale = np.ones(n)
    row_perm = np.arange(n, dtype=np.int64)
    eq: EquilibrationResult | None = None
    mt: MatchingResult | None = None
    A_work = A
    if equilibrate:
        with tracer.span("equilibrate"):
            eq = ruiz_equilibrate(A, max_iters=equilibrate_iters,
                                  tol=equilibrate_tol)
            A_work = eq.A_scaled
            row_scale = eq.row_scale
            col_scale = eq.col_scale
            tracer.count("equilibrate_iters", eq.iterations)
    if matching:
        with tracer.span("matching"):
            d = np.abs(A_work.diagonal())
            if n > 0 and float(d.min()) >= matching_threshold:
                tracer.count("matching_skipped")
            else:
                mt = maximum_product_matching(A_work)
                row_perm = mt.row_perm
                if not mt.identity:
                    A_work = A_work[row_perm].tocsr()
                tracer.count("matching_identity", int(mt.identity))
                tracer.count("matched_diagonal",
                             int(round(mt.matched_fraction * n)))
    return SystemTransform(A_work=A_work, row_scale=row_scale,
                           col_scale=col_scale, row_perm=row_perm,
                           equilibration=eq, matching=mt)


def retarget_system(prep: SystemTransform, A_new: sp.spmatrix, *,
                    equilibrate_iters: int = 20,
                    equilibrate_tol: float = 1e-2) -> SystemTransform:
    """Rebuild a transform for *fresh values on the same pattern* (the
    ``update_matrix`` path): the matching row permutation is reused —
    the DBBD partition was computed on the permuted matrix and must not
    move — while the Ruiz scalings are recomputed for the new values.
    """
    A_new = check_csr(A_new)
    n = A_new.shape[0]
    row_scale = np.ones(n)
    col_scale = np.ones(n)
    eq: EquilibrationResult | None = None
    A_work = A_new
    if prep.equilibration is not None:
        eq = ruiz_equilibrate(A_new, max_iters=equilibrate_iters,
                              tol=equilibrate_tol)
        A_work = eq.A_scaled
        row_scale = eq.row_scale
        col_scale = eq.col_scale
    if prep.matching is not None and not prep.matching.identity:
        A_work = A_work[prep.row_perm].tocsr()
    return SystemTransform(A_work=A_work, row_scale=row_scale,
                           col_scale=col_scale, row_perm=prep.row_perm,
                           equilibration=eq, matching=prep.matching)
