"""Ruiz-style iterative row/column equilibration.

Ill-scaled systems defeat every stage of the hybrid pipeline: threshold
pivoting picks structurally convenient but numerically tiny pivots, the
relative drop tolerances on ``G~``/``W~``/``S~`` throw away entries that
only *look* small, and Krylov convergence tests measured in the norm of
a badly scaled residual certify garbage. The standard production
defense (HSL MC77, SuperLU_DIST's equilibration phase) is to solve the
scaled system

    (R A C) y = R b,        x = C y,

where ``R``/``C`` are diagonal and chosen so every row and column of
``R A C`` has unit infinity norm. Ruiz's algorithm reaches that
fixed point by repeatedly dividing each row and column by the square
root of its current max magnitude; convergence is geometric and a
handful of sweeps suffice in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils import check_csr

__all__ = ["EquilibrationResult", "ruiz_equilibrate", "scaling_quality"]


def _row_abs_max(A: sp.csr_matrix) -> np.ndarray:
    """Per-row max |a_ij| (0 for empty rows)."""
    out = np.zeros(A.shape[0])
    absdata = np.abs(A.data)
    for i in range(A.shape[0]):
        lo, hi = A.indptr[i], A.indptr[i + 1]
        if hi > lo:
            out[i] = absdata[lo:hi].max()
    return out


def _abs_maxima(A: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """(row max, col max) of |A| in one pass each."""
    r = _row_abs_max(A)
    c = _row_abs_max(A.T.tocsr())
    return r, c


@dataclass
class EquilibrationResult:
    """Diagonal scalings ``R`` (rows) and ``C`` (columns) with the
    scaled matrix ``A_scaled = R A C``.

    ``converged`` means every row and column max of ``A_scaled`` is
    within ``tol`` of 1; ``iterations`` counts Ruiz sweeps actually run.
    Zero rows/columns keep scale 1 (they cannot be normalized and must
    be left for the static-pivoting ladder to handle).
    """

    A_scaled: sp.csr_matrix
    row_scale: np.ndarray
    col_scale: np.ndarray
    iterations: int
    converged: bool

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """``R b`` — the right-hand side of the scaled system."""
        return self.row_scale * np.asarray(b, dtype=np.float64)

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """``C y`` — map a scaled-system solution back to ``A x = b``."""
        return self.col_scale * np.asarray(y, dtype=np.float64)


def scaling_quality(A: sp.spmatrix) -> float:
    """Max over rows and columns of ``|log10(max|a_ij|)|`` — 0 for a
    perfectly equilibrated matrix, large for an ill-scaled one."""
    A = check_csr(A)
    r, c = _abs_maxima(A)
    m = np.concatenate([r[r > 0], c[c > 0]])
    if m.size == 0:
        return 0.0
    return float(np.abs(np.log10(m)).max())


def ruiz_equilibrate(A: sp.spmatrix, *, max_iters: int = 20,
                     tol: float = 1e-2) -> EquilibrationResult:
    """Equilibrate ``A`` to doubly (near-)unit row/column inf-norms.

    Each sweep divides row ``i`` by ``sqrt(max_j |a_ij|)`` and column
    ``j`` by ``sqrt(max_i |a_ij|)``; the scalings accumulate in
    ``row_scale``/``col_scale``. Stops once every nonzero row and
    column max lies in ``[1 - tol, 1 + tol]``.
    """
    A = check_csr(A).astype(np.float64)
    n_rows, n_cols = A.shape
    if max_iters < 0:
        raise ValueError("max_iters must be non-negative")
    if not (0.0 < tol < 1.0):
        raise ValueError("tol must be in (0, 1)")
    r_scale = np.ones(n_rows)
    c_scale = np.ones(n_cols)
    As = A.copy()
    converged = False
    it = 0
    for it in range(1, max_iters + 1):
        rmax, cmax = _abs_maxima(As)
        live_r = rmax > 0
        live_c = cmax > 0
        if (np.all(np.abs(rmax[live_r] - 1.0) <= tol)
                and np.all(np.abs(cmax[live_c] - 1.0) <= tol)):
            converged = True
            it -= 1
            break
        dr = np.ones(n_rows)
        dc = np.ones(n_cols)
        dr[live_r] = 1.0 / np.sqrt(rmax[live_r])
        dc[live_c] = 1.0 / np.sqrt(cmax[live_c])
        As = sp.diags(dr) @ As @ sp.diags(dc)
        r_scale *= dr
        c_scale *= dc
    else:
        rmax, cmax = _abs_maxima(As)
        live_r = rmax > 0
        live_c = cmax > 0
        converged = bool(np.all(np.abs(rmax[live_r] - 1.0) <= tol)
                         and np.all(np.abs(cmax[live_c] - 1.0) <= tol))
    As = As.tocsr()
    As.sum_duplicates()
    As.sort_indices()
    return EquilibrationResult(A_scaled=As, row_scale=r_scale,
                               col_scale=c_scale, iterations=it,
                               converged=converged)
