"""Hager-Higham 1-norm condition estimation.

``cond_1(A) = ||A||_1 ||A^{-1}||_1`` diagnoses *why* a solve is about to
go wrong: a subdomain ``D_l`` with a huge condition number amplifies
the thresholded interface solves ``G~``/``W~`` into a useless Schur
preconditioner long before anything visibly breaks down. Forming
``A^{-1}`` is out of the question, but Hager's iteration (refined by
Higham, the algorithm behind LAPACK's ``xLACON``) estimates
``||A^{-1}||_1`` from a handful of solves with ``A`` and ``A^T`` —
exactly the operations an existing LU factorization provides for free.

The estimate is a lower bound that is almost always within a small
factor of the truth; that is all the drop-tolerance auto-tightening
logic needs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.lu.numeric import LUFactors

__all__ = ["onenormest_inverse", "condest_from_factors", "condest"]

Operator = Callable[[np.ndarray], np.ndarray]


def onenormest_inverse(solve: Operator, solve_t: Operator, n: int, *,
                       itmax: int = 5) -> float:
    """Estimate ``||A^{-1}||_1`` given solves with ``A`` and ``A^T``.

    Hager's algorithm: starting from the uniform vector, alternate
    ``y = A^{-1} x`` (estimate is ``||y||_1``) and a gradient step
    ``z = A^{-T} sign(y)``; move the probe to the unit vector of the
    largest ``|z_j|`` until the estimate stops improving. Augmented
    with Higham's odd/even extra vector so a deceptive first probe
    cannot return a gross underestimate.
    """
    if n <= 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(max(itmax, 1)):
        y = np.asarray(solve(x), dtype=np.float64)
        est_new = float(np.abs(y).sum())
        xi = np.where(y >= 0.0, 1.0, -1.0)
        z = np.asarray(solve_t(xi), dtype=np.float64)
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z[j])) <= float(z @ x) or est_new <= est:
            est = max(est, est_new)
            break
        est = est_new
        x = np.zeros(n)
        x[j] = 1.0
    # Higham's alternating probe: catches adversarial cases where the
    # unit-vector walk converges to a non-maximizing column
    w = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1))
                  for i in range(n)])
    y = np.asarray(solve(w), dtype=np.float64)
    alt = 2.0 * float(np.abs(y).sum()) / (3.0 * n)
    return float(max(est, alt))


def condest_from_factors(A: sp.spmatrix, factors: LUFactors, *,
                         itmax: int = 5) -> float:
    """``cond_1`` estimate of ``A`` using its LU factors for the solves.

    ``A`` must be the matrix that was factorized (any pre-permutation
    already applied). Returns ``inf`` when the factors contain
    non-finite entries — the factorization itself already broke down.
    """
    n = A.shape[0]
    if n == 0:
        return 1.0
    norm_a = _onenorm(A)
    if norm_a == 0.0:
        return 0.0
    if not (np.all(np.isfinite(factors.L.data))
            and np.all(np.isfinite(factors.U.data))):
        return float("inf")
    inv_est = onenormest_inverse(factors.solve, factors.solve_transpose,
                                 n, itmax=itmax)
    if not np.isfinite(inv_est):
        return float("inf")
    return float(norm_a * inv_est)


def condest(A: sp.spmatrix, *, solve: Operator, solve_t: Operator,
            itmax: int = 5) -> float:
    """``cond_1`` estimate of ``A`` through caller-supplied solves —
    e.g. a full hybrid solver standing in for ``A^{-1}``."""
    n = A.shape[0]
    norm_a = _onenorm(A)
    if n == 0 or norm_a == 0.0:
        return 0.0 if norm_a == 0.0 else 1.0
    return float(norm_a * onenormest_inverse(solve, solve_t, n,
                                             itmax=itmax))


def _onenorm(A: sp.spmatrix) -> float:
    """Exact ``||A||_1`` (max absolute column sum)."""
    if A.shape[1] == 0 or A.nnz == 0:
        return 0.0
    colsums = np.asarray(np.abs(A).sum(axis=0)).ravel()
    return float(colsums.max())
