"""Numerical robustness layer: the production defenses that turn the
hybrid solver's "a residual norm came back small" into a quantified
accuracy guarantee.

- :mod:`repro.numerics.equilibrate` — Ruiz iterative row/column
  scaling, applied before DBBD partitioning and undone on the returned
  solution;
- :mod:`repro.numerics.matching` — MC64-style maximum-product matching
  (shortest augmenting paths on ``log|a_ij|``) as a *proactive* static
  pivoting step ahead of the reactive perturbation ladder;
- :mod:`repro.numerics.condest` — Hager-Higham 1-norm condition
  estimation from existing LU factors, driving drop-tolerance
  auto-tightening;
- :mod:`repro.numerics.refine` — Oettli-Prager backward errors and
  certified fixed-precision iterative refinement with stagnation
  detection and resilience escalation;
- :mod:`repro.numerics.pipeline` — the solver-facing transform
  composing scaling + matching;
- :mod:`repro.numerics.smoke` — the CI ``numerics-smoke`` scenario
  (imported explicitly; it pulls in the solver stack).
"""

from repro.numerics.condest import (
    condest,
    condest_from_factors,
    onenormest_inverse,
)
from repro.numerics.equilibrate import (
    EquilibrationResult,
    ruiz_equilibrate,
    scaling_quality,
)
from repro.numerics.matching import MatchingResult, maximum_product_matching
from repro.numerics.pipeline import (
    SystemTransform,
    prepare_system,
    retarget_system,
)
from repro.numerics.refine import CertifiedAccuracy, backward_errors, refine

__all__ = [
    "EquilibrationResult", "ruiz_equilibrate", "scaling_quality",
    "MatchingResult", "maximum_product_matching",
    "onenormest_inverse", "condest_from_factors", "condest",
    "CertifiedAccuracy", "backward_errors", "refine",
    "SystemTransform", "prepare_system", "retarget_system",
]
