"""In-process solver serving layer.

- :class:`SolverService` (:mod:`repro.service.core`) — session-cached,
  micro-batching request front end over :class:`repro.solver.PDSLin`;
- :mod:`repro.service.cache` — the byte-accounted LRU of set-up
  sessions;
- :mod:`repro.service.errors` — structured :class:`ServiceError`
  rejections;
- ``python -m repro.service.smoke`` — mixed-traffic replay smoke.
"""

from repro.service.cache import Session, SessionCache, session_key
from repro.service.core import SolverService, serve
from repro.service.errors import (
    ServiceClosedError,
    ServiceDeadlineError,
    ServiceError,
    ServiceOverloadedError,
    UnknownSessionError,
)

__all__ = [
    "SolverService", "serve",
    "Session", "SessionCache", "session_key",
    "ServiceError", "ServiceClosedError", "ServiceDeadlineError",
    "ServiceOverloadedError", "UnknownSessionError",
]
