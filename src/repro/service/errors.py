"""Structured rejections of the serving layer.

Every way :class:`repro.service.SolverService` can refuse a request is
a :class:`ServiceError` subclass carrying the context a client needs to
react programmatically (queue depth at rejection, the deadline that was
missed, the fingerprint that was unknown) — the serving-layer analogue
of the pipeline's :class:`repro.resilience.SolverError` hierarchy, and
a subclass of it, so one ``except SolverError`` guard covers both the
solver and the service in front of it. Like every ``SolverError``,
instances survive pickling with their structured attributes intact.
"""

from __future__ import annotations

from repro.resilience.errors import SolverError

__all__ = [
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceDeadlineError",
    "UnknownSessionError",
]


class ServiceError(SolverError):
    """Base class for serving-layer rejections and failures."""

    def __init__(self, message: str, *, request_id: int | None = None,
                 stage: str = "Service"):
        super().__init__(message, stage=stage)
        self.request_id = request_id


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down): the request was
    not accepted, or was pending when :meth:`SolverService.close`
    drained the queue."""


class ServiceOverloadedError(ServiceError):
    """Backpressure rejection: the request queue is at its depth limit,
    or too many *distinct* cold matrices are already awaiting setup.

    ``queue_depth`` / ``limit`` describe the constraint that fired:
    for the cold-matrix limit they count pending distinct sessions.
    """

    def __init__(self, message: str, *, queue_depth: int = 0,
                 limit: int = 0, request_id: int | None = None):
        super().__init__(message, request_id=request_id)
        self.queue_depth = queue_depth
        self.limit = limit


class ServiceDeadlineError(ServiceError):
    """The request's deadline expired before its batch was dispatched.

    ``deadline_s`` is the budget the request carried; ``waited_s`` how
    long it actually sat in the queue. Requests still live at dispatch
    have their remaining budget mapped onto the solver's per-task
    deadline machinery instead of raising this.
    """

    def __init__(self, message: str, *, deadline_s: float = 0.0,
                 waited_s: float = 0.0, request_id: int | None = None):
        super().__init__(message, request_id=request_id)
        self.deadline_s = float(deadline_s)
        self.waited_s = float(waited_s)


class UnknownSessionError(ServiceError):
    """A request addressed a session by fingerprint, but no session
    with that fingerprint is cached (never created, or evicted).
    Resubmit with the full matrix to re-establish it."""

    def __init__(self, message: str, *, fingerprint: str = "",
                 request_id: int | None = None):
        super().__init__(message, request_id=request_id)
        self.fingerprint = fingerprint
