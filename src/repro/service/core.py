"""The in-process solver serving layer.

:class:`SolverService` turns the one-shot ``PDSLin(A).solve(b)`` flow
into a long-lived server: concurrent callers :meth:`~SolverService.submit`
right-hand sides (with the full matrix, or just its fingerprint once the
session is hot) and get ``concurrent.futures.Future`` handles back; a
single dispatcher thread coalesces requests that target the same session
inside a small time window and fans each group out as one batched
:meth:`~repro.solver.PDSLin.solve_block` call, so factors ship to
workers once per batch instead of once per request.

Sessions — fully-set-up solvers — live in a byte-accounted LRU
(:mod:`repro.service.cache`) keyed by the checkpoint identity
fingerprint, so repeat traffic skips partitioning and factorization
entirely. Session solvers run with ``krylov_seed`` off: every batched
column is then bit-identical to a fresh scalar ``solve()`` (the
``solve_block`` parity contract), i.e. caching and batching never
change the answer.

Deadlines: a request may carry ``deadline_s``. If it expires while
queued, the request is rejected with a structured
:class:`~repro.service.errors.ServiceDeadlineError`; if it is live at
dispatch, the tightest remaining budget in the batch is mapped onto the
solver's per-task deadline machinery (workers past it are cancelled and
the work redone on the root — the PR-level straggler mitigation), and
requests that still complete late are counted, not dropped.

Worker hygiene: backends passed as spec strings (``"process:4"``) are
created privately (``fresh=True``), owned by the service, and closed in
:meth:`~SolverService.close` — after ``close()`` returns, no worker
process the service started is left running. Backends passed as live
:class:`~repro.parallel.exec.Executor` instances stay caller-owned.

Observability: every request gets a span on the service tracer (spans
are recorded on the dispatcher thread only — the Tracer is
single-stack), counters track cache hits/misses, evicted bytes, queue
depth high-water, deadline misses and per-batch RHS throughput, and
:meth:`~SolverService.service_report` returns the whole picture as one
dict. ``python -m repro.service.smoke`` replays a mixed traffic pattern
against all of it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from concurrent.futures import Future
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro import envcfg
from repro.lu.cache import pattern_fingerprint
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.exec import Executor, get_backend
from repro.resilience.checkpoint import config_fingerprint
from repro.service.cache import (
    Session,
    SessionCache,
    make_session,
    session_key,
)
from repro.service.errors import (
    ServiceClosedError,
    ServiceDeadlineError,
    ServiceError,
    ServiceOverloadedError,
    UnknownSessionError,
)
from repro.solver import PDSLin, PDSLinConfig, PDSLinResult, RuntimeOptions
from repro.utils import check_csr, check_finite, check_square

__all__ = ["SolverService", "serve"]


class _Request:
    """One queued right-hand side."""

    __slots__ = ("id", "key", "A", "config", "b", "future", "deadline_s",
                 "expires_at", "submitted_at")

    def __init__(self, id: int, key: str, A: Optional[sp.spmatrix],
                 config: PDSLinConfig, b: np.ndarray,
                 deadline_s: Optional[float], now: float):
        self.id = id
        self.key = key
        self.A = A              # None on fingerprint-addressed requests
        self.config = config
        self.b = b
        self.future: "Future[PDSLinResult]" = Future()
        self.deadline_s = deadline_s
        self.expires_at = None if deadline_s is None else now + deadline_s
        self.submitted_at = now


class SolverService:
    """Long-lived serving front end over cached :class:`PDSLin` sessions.

    Parameters (``None`` consults the ``REPRO_SERVICE_*`` environment
    registry, then the documented default):

    - ``cache_bytes`` — session-cache budget (``REPRO_SERVICE_CACHE_BYTES``,
      default 256 MiB); LRU sessions past it are evicted with their
      SuperLU handles released.
    - ``batch_window_s`` — how long dispatch lingers after the first
      pending request to coalesce same-session traffic
      (``REPRO_SERVICE_BATCH_WINDOW_S``, default 5 ms).
    - ``max_pending`` — queue-depth backpressure limit
      (``REPRO_SERVICE_MAX_PENDING``, default 256); submits past it
      raise :class:`ServiceOverloadedError`.
    - ``max_cold_sessions`` — distinct not-yet-cached matrices allowed
      in the queue at once (default 8): one slow-to-set-up burst of new
      matrices cannot starve hot traffic unboundedly.
    - ``backend`` — execution backend for session solvers: a spec
      string (private, service-owned pool) or an
      :class:`~repro.parallel.exec.Executor` (caller-owned). Default
      serial.
    - ``config`` — default :class:`PDSLinConfig` for requests that do
      not carry one.
    - ``tracer`` — service-level :class:`~repro.obs.tracer.Tracer`.

    Use as a context manager, or call :meth:`close` — it drains the
    queue (pending requests get :class:`ServiceClosedError`), releases
    every cached session, and stops any worker pool the service owns.
    """

    def __init__(self, *, config: Optional[PDSLinConfig] = None,
                 cache_bytes: Optional[int] = None,
                 batch_window_s: Optional[float] = None,
                 max_pending: Optional[int] = None,
                 max_cold_sessions: int = 8,
                 backend: Union[Executor, str, None] = None,
                 tracer: Optional[Tracer] = None):
        if cache_bytes is None:
            cache_bytes = envcfg.get("REPRO_SERVICE_CACHE_BYTES")
        if batch_window_s is None:
            batch_window_s = envcfg.get("REPRO_SERVICE_BATCH_WINDOW_S")
        if max_pending is None:
            max_pending = envcfg.get("REPRO_SERVICE_MAX_PENDING")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_cold_sessions < 1:
            raise ValueError("max_cold_sessions must be >= 1")
        self.batch_window_s = float(batch_window_s)
        self.max_pending = int(max_pending)
        self.max_cold_sessions = int(max_cold_sessions)
        self.default_config = config or PDSLinConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

        # backend: spec strings become a private pool the service owns
        # and must close; live Executor instances stay caller-owned
        # (closing one behind the caller's back would break their other
        # solvers — and shared instances are closed at interpreter exit)
        self._owns_backend = isinstance(backend, str)
        if isinstance(backend, str):
            self._backend: Executor = get_backend(backend, fresh=True)
        elif backend is None:
            self._backend = get_backend("serial")
        else:
            self._backend = backend

        self.cache = SessionCache(cache_bytes)
        # queue lock (fast, never held across a solve) vs. execution
        # lock (held for whole batches; update_matrix() takes it from
        # client threads to mutate a session the dispatcher might use)
        self._exec_lock = threading.Lock()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: list[_Request] = []
        # sessions the in-flight batch can establish (key -> n): after
        # the dispatcher pops a carrier off the queue and before its
        # session lands in the cache, fingerprint-addressed submits are
        # admitted (and length-checked) against this, not bounced
        self._building: dict[str, int] = {}
        self._closing = False
        self._closed = False
        self._next_id = 0
        self._started_at = time.monotonic()
        self._stats = {
            "submitted": 0, "served": 0, "failed": 0,
            "rejected_overload": 0, "rejected_unknown": 0,
            "rejected_closed": 0, "deadline_missed": 0,
            "deadline_late": 0, "batches": 0, "batched_rhs": 0,
            "max_batch_nrhs": 0, "queue_depth_hwm": 0,
            "revalidations": 0, "solve_wall_s": 0.0,
        }
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch",
            daemon=True)
        self._dispatcher.start()

    # -- client surface ---------------------------------------------------

    def fingerprint(self, A: sp.spmatrix,
                    config: Optional[PDSLinConfig] = None) -> str:
        """The session key for (A, config) — hand this back to
        :meth:`submit` instead of the matrix once the session is warm
        to skip re-hashing ``A`` on the client side... and to skip
        shipping the matrix at all."""
        return session_key(check_csr(A), config or self.default_config)

    def submit(self, A_or_fingerprint: Union[sp.spmatrix, str],
               b: np.ndarray, *, config: Optional[PDSLinConfig] = None,
               deadline_s: Optional[float] = None
               ) -> "Future[PDSLinResult]":
        """Enqueue one solve; returns a Future resolving to the
        :class:`PDSLinResult` (or raising a :class:`ServiceError` /
        solver error). Thread-safe. Rejections for backpressure,
        unknown fingerprints, or a closed service raise synchronously.
        """
        cfg = config or self.default_config
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        b = np.asarray(b, dtype=np.float64)
        if b.ndim != 1:
            raise ValueError("b must be a 1-D right-hand side; batch "
                             "submissions are coalesced by the service")
        check_finite(b, "b")

        if isinstance(A_or_fingerprint, str):
            key, A = A_or_fingerprint, None
        else:
            A = check_csr(A_or_fingerprint)
            check_square(A, "A")
            check_finite(A, "A")
            if b.shape[0] != A.shape[0]:
                raise ValueError(f"b must have length {A.shape[0]}")
            key = session_key(A, cfg)

        now = time.monotonic()
        with self._lock:
            if self._closing:
                self._stats["rejected_closed"] += 1
                raise ServiceClosedError("service is closed")
            if len(self._queue) >= self.max_pending:
                self._stats["rejected_overload"] += 1
                raise ServiceOverloadedError(
                    f"request queue full ({len(self._queue)} pending)",
                    queue_depth=len(self._queue), limit=self.max_pending)
            if A is None:
                n = self._session_n(key)
                if n is None:
                    self._stats["rejected_unknown"] += 1
                    raise UnknownSessionError(
                        f"no cached session for fingerprint {key[:16]}...; "
                        f"resubmit with the full matrix", fingerprint=key)
                # length-check here, not at dispatch: a mismatched b in
                # a coalesced batch must fail its own submit, never the
                # group it would have been stacked with
                if b.shape[0] != n:
                    raise ValueError(
                        f"b must have length {n} to match session "
                        f"{key[:16]}...")
            if A is not None and key not in self.cache:
                cold = {r.key for r in self._queue
                        if r.key not in self.cache}
                if key not in cold and len(cold) >= self.max_cold_sessions:
                    self._stats["rejected_overload"] += 1
                    raise ServiceOverloadedError(
                        f"{len(cold)} cold matrices already pending",
                        queue_depth=len(cold),
                        limit=self.max_cold_sessions)
            req = _Request(self._next_id, key, A, cfg, b, deadline_s, now)
            self._next_id += 1
            self._stats["submitted"] += 1
            self._queue.append(req)
            self._stats["queue_depth_hwm"] = max(
                self._stats["queue_depth_hwm"], len(self._queue))
            self._work.notify_all()
        return req.future

    def solve(self, A_or_fingerprint: Union[sp.spmatrix, str],
              b: np.ndarray, *, config: Optional[PDSLinConfig] = None,
              deadline_s: Optional[float] = None) -> PDSLinResult:
        """Blocking :meth:`submit`."""
        return self.submit(A_or_fingerprint, b, config=config,
                           deadline_s=deadline_s).result()

    def update_matrix(self, A_new: sp.spmatrix, *,
                      config: Optional[PDSLinConfig] = None) -> str:
        """Revalidate a cached session for new matrix *values* on an
        unchanged pattern (time-stepping / Newton traffic): the session
        keeps its partition and symbolic analysis, reruns only the
        numeric phases, and is rekeyed to the new fingerprint. Returns
        the new session key. Falls back to plain cold admission (full
        setup on next submit) when no pattern-matching session is
        cached."""
        cfg = config or self.default_config
        A_new = check_csr(A_new)
        check_square(A_new, "A_new")
        check_finite(A_new, "A_new")
        new_key = session_key(A_new, cfg)
        with self._lock:
            if self._closing:
                raise ServiceClosedError("service is closed")
            if new_key in self.cache:
                return new_key
            session = self.cache.find_pattern(
                pattern_fingerprint(A_new), config_fingerprint(cfg))
        if session is None:
            return new_key
        # serialize with dispatch: the solver must not be mid-batch
        with self._exec_lock:
            with self.tracer.span("service_update", key=new_key[:16]):
                session.solver.update_matrix(A_new)
            with self._lock:
                if session.key in self.cache:
                    self.cache.rekey(session.key, new_key)
                    session.nbytes = _resize(session)
                    self._stats["revalidations"] += 1
                    self.tracer.count("service_revalidations")
        return new_key

    def _session_n(self, key: str) -> Optional[int]:
        """Problem size of the session ``key`` resolves to — cached,
        being set up by the in-flight batch, or carried by a queued
        request — or None if nothing can establish it. Caller holds
        ``_lock``."""
        session = self.cache.peek(key)
        if session is not None:
            return session.n
        n = self._building.get(key)
        if n is not None:
            return n
        for r in self._queue:
            if r.key == key and r.A is not None:
                return int(r.A.shape[0])
        return None

    # -- dispatcher -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._work.wait()
                if self._closing and not self._queue:
                    return
                # micro-batch window: linger after the first arrival so
                # same-session requests coalesce into one fan-out
                window_end = self._queue[0].submitted_at \
                    + self.batch_window_s
                while not self._closing:
                    remaining = window_end - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._work.wait(timeout=remaining)
                batch, self._queue = self._queue, []
                for req in batch:
                    if req.A is not None:
                        self._building.setdefault(
                            req.key, int(req.A.shape[0]))
            if self._closing:
                self._reject_batch(batch, ServiceClosedError(
                    "service closed while the request was queued"))
                with self._lock:
                    self._building.clear()
                    if not self._queue:
                        return
                continue
            # group by session, preserving arrival order of groups
            groups: "dict[str, list[_Request]]" = {}
            for req in batch:
                groups.setdefault(req.key, []).append(req)
            for key, reqs in groups.items():
                if self._closing:
                    # close() is waiting: reject instead of solving so
                    # shutdown is bounded by one group, not the batch
                    self._reject_batch(reqs, ServiceClosedError(
                        "service closed while the request was queued"))
                    with self._lock:
                        self._building.pop(key, None)
                    continue
                try:
                    with self._exec_lock:
                        self._serve_group(key, reqs)
                except Exception as exc:
                    # backstop: _serve_group guards its own failure
                    # modes, but an escape here must fail the group's
                    # futures, never kill the dispatcher (every queued
                    # future would then hang forever)
                    self._fail_unfinished(reqs, exc)
                finally:
                    with self._lock:
                        self._building.pop(key, None)

    def _reject_batch(self, reqs: list[_Request],
                      error: ServiceError) -> None:
        rejected = 0
        for req in reqs:
            if req.future.set_running_or_notify_cancel():
                req.future.set_exception(error)
                rejected += 1
        if rejected:
            with self._lock:
                self._stats["rejected_closed"] += rejected

    def _fail_unfinished(self, reqs: list[_Request],
                         exc: BaseException) -> None:
        """Fail every future of ``reqs`` that has not resolved yet —
        the dispatcher's backstop against a group error leaving callers
        hung on futures nobody will ever set."""
        failed = 0
        for req in reqs:
            fut = req.future
            if fut.done():
                continue
            try:
                if not fut.set_running_or_notify_cancel():
                    continue  # cancelled
            except Exception:
                pass  # already running: set_exception below still works
            if not fut.done():
                fut.set_exception(exc)
                failed += 1
        if failed:
            with self._lock:
                self._stats["failed"] += failed
            self.tracer.count("service_failed", failed)

    def _fail_group(self, live: list[_Request], exc: Exception) -> None:
        for req in live:
            req.future.set_exception(exc)
        with self._lock:
            self._stats["failed"] += len(live)
        self.tracer.count("service_failed", len(live))

    def _expire(self, reqs: list[_Request],
                now: float) -> list[_Request]:
        """Reject the (already running) requests whose deadline has
        passed; returns the survivors."""
        live: list[_Request] = []
        for req in reqs:
            if req.expires_at is not None and now > req.expires_at:
                with self._lock:
                    self._stats["deadline_missed"] += 1
                self.tracer.count("service_deadline_missed")
                req.future.set_exception(ServiceDeadlineError(
                    f"deadline {req.deadline_s:.3f}s expired before "
                    f"dispatch", deadline_s=req.deadline_s,
                    waited_s=now - req.submitted_at, request_id=req.id))
            else:
                live.append(req)
        return live

    def _serve_group(self, key: str, reqs: list[_Request]) -> None:
        """Serve all queued requests of one session as a single
        batched solve. Runs on the dispatcher thread only (tracer
        spans are safe here)."""
        started = [req for req in reqs
                   if req.future.set_running_or_notify_cancel()]
        live = self._expire(started, time.monotonic())
        if not live:
            return

        try:
            session, hit = self._session_for(key, live)
        except Exception as exc:  # setup failure rejects the group
            self._fail_group(live, exc)
            return
        for req in live:
            self.tracer.count(
                "service_cache_hit" if hit else "service_cache_miss")

        # cold setup can be long: re-read the clock so deadlines that
        # lapsed during setup are rejected and the budgets below
        # reflect the time actually left, not the pre-setup snapshot
        now = time.monotonic()
        live = self._expire(live, now)
        if not live:
            return

        solver = session.solver
        # tightest live deadline bounds the batch's parallel fan-outs
        # (straggling workers cancelled, work redone on root)
        budgets = [req.expires_at - now for req in live
                   if req.expires_at is not None]
        saved_deadline = solver.task_deadline_s
        t0 = time.monotonic()
        try:
            if budgets:
                solver.task_deadline_s = max(min(budgets), 1e-3)
            # stack inside the guard: anything malformed that slipped
            # past submit-time validation fails this group's futures,
            # not the dispatcher thread
            B = np.stack([req.b for req in live], axis=1)
            with self.tracer.span("service_batch", key=key[:16],
                                  nrhs=len(live), cache_hit=hit):
                block = solver.solve_block(B)
        except Exception as exc:
            self._fail_group(live, exc)
            return
        finally:
            solver.task_deadline_s = saved_deadline
        wall = time.monotonic() - t0

        done = time.monotonic()
        late = 0
        for req, result in zip(live, block):
            if req.expires_at is not None and done > req.expires_at:
                late += 1
                self.tracer.count("service_deadline_late")
            req.future.set_result(result)
        with self._lock:
            session.solves += 1
            session.rhs_served += len(live)
            self._stats["served"] += len(live)
            self._stats["deadline_late"] += late
            self._stats["batches"] += 1
            self._stats["batched_rhs"] += len(live)
            self._stats["max_batch_nrhs"] = max(
                self._stats["max_batch_nrhs"], len(live))
            self._stats["solve_wall_s"] += wall
        if wall > 0.0:
            self.tracer.count("noise:service_rhs_per_s", len(live) / wall)

    def _session_for(self, key: str,
                     reqs: list[_Request]) -> tuple[Session, bool]:
        """Cached session for ``key``, or build one from the first
        request that carried the matrix."""
        with self._lock:
            session = self.cache.get(key)
        if session is not None:
            return session, True
        carrier = next((r for r in reqs if r.A is not None), None)
        if carrier is None:
            raise UnknownSessionError(
                f"session {key[:16]}... is not cached and no live "
                f"request in this batch carries its matrix (the carrier "
                f"was cancelled or failed, or the session was evicted "
                f"while the request was queued); resubmit with the full "
                f"matrix", fingerprint=key)
        # sessions solve with krylov_seed off: batched columns are then
        # bit-identical to fresh scalar solves (the solve_block parity
        # contract) — a cache/batching layer must never change answers.
        # The field is solve-phase-only, so the fingerprint (and any
        # checkpoint identity) is unchanged.
        cfg = carrier.config
        if getattr(cfg, "krylov_seed", False):
            cfg = dataclasses.replace(cfg, krylov_seed=False)
        solver = PDSLin(carrier.A, cfg, runtime=RuntimeOptions(
            backend=self._backend, tracer=self.tracer))
        with self.tracer.span("service_setup", key=key[:16],
                              n=int(carrier.A.shape[0])):
            solver.setup()
        session = make_session(key, solver, carrier.A, carrier.config)
        with self._lock:
            evicted = self.cache.put(session)
        for old in evicted:
            self.tracer.count("service_evicted_bytes", old.nbytes)
            self.tracer.count("service_evictions")
        return session, False

    # -- lifecycle / observability ----------------------------------------

    def service_report(self) -> dict:
        """Snapshot of queue, cache, session and throughput state."""
        with self._lock:
            queue_depth = len(self._queue)
            cache = self.cache.snapshot()
            sessions = [{
                "key": s.key[:16], "nbytes": s.nbytes, "hits": s.hits,
                "solves": s.solves, "rhs_served": s.rhs_served,
            } for s in self.cache]
            stats = dict(self._stats)
        busy = stats.pop("solve_wall_s")
        report = {
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": queue_depth,
            "batch_window_s": self.batch_window_s,
            "max_pending": self.max_pending,
            "cache": cache,
            "sessions": sessions,
            "requests": stats,
            "throughput": {
                "solve_wall_s": busy,
                "rhs_per_s": (stats["served"] / busy) if busy > 0 else 0.0,
                "mean_batch_nrhs": (stats["batched_rhs"] / stats["batches"])
                if stats["batches"] else 0.0,
            },
        }
        return report

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain and shut down: pending requests are rejected with
        :class:`ServiceClosedError`, cached sessions are released
        (SuperLU handles freed), and any service-owned worker pool is
        terminated. Idempotent.

        ``timeout`` bounds the wait for an in-flight batch (``None``
        waits indefinitely). If the batch outlives it, teardown is NOT
        forced — releasing factors or killing workers under a live
        solve would corrupt it — a :class:`RuntimeWarning` is emitted,
        :attr:`closed` stays False, and a later ``close()`` retries."""
        with self._lock:
            if self._closed:
                return
            self._closing = True
            self._work.notify_all()
        self._dispatcher.join(timeout=timeout)
        with self._lock:
            leftovers, self._queue = self._queue, []
        self._reject_batch(leftovers, ServiceClosedError(
            "service closed while the request was queued"))
        # serialize teardown with any batch still solving: clearing the
        # cache releases SuperLU handles and closing the backend kills
        # workers — neither may happen under a live solve_block. Once
        # _closing is set the dispatcher rejects instead of serving, so
        # this waits for at most the one in-flight group.
        if not self._exec_lock.acquire(
                timeout=-1 if timeout is None else timeout):
            self.tracer.count("service_close_incomplete")
            warnings.warn(
                f"SolverService.close(): a batch was still solving "
                f"after the {timeout}s grace period; cached sessions "
                f"and workers were left alive — call close() again to "
                f"finish teardown", RuntimeWarning, stacklevel=2)
            return
        try:
            with self._lock:
                freed = self.cache.clear()
            self.tracer.count("service_evicted_bytes", freed)
            if self._owns_backend:
                self._backend.close()
            self._closed = True
        finally:
            self._exec_lock.release()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resize(session: Session) -> int:
    from repro.service.cache import session_nbytes
    return session_nbytes(session.solver)


def serve(**kwargs) -> SolverService:
    """Start a :class:`SolverService` (see its docstring for knobs) —
    the top-level entry point re-exported as :func:`repro.serve`."""
    return SolverService(**kwargs)
