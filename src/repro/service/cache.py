"""Byte-accounted LRU cache of fully-set-up solver sessions.

A *session* is a :class:`repro.solver.PDSLin` that has completed
``setup()`` — partition, subdomain LU factors (with live SuperLU
handles), approximate Schur complement and its factorization — keyed by
the same identity fingerprint the checkpoint layer uses:
``matrix_fingerprint(A)`` (pattern + values) crossed with
``config_fingerprint(config)`` (every numeric knob, minus the
solve-phase-only fields). Two requests with byte-identical matrices and
configs therefore share one session; any change to either gets its own.

Memory is accounted in bytes (a recursive sweep over the solver's numpy
and scipy.sparse payloads) against a budget; inserting past the budget
evicts least-recently-used sessions. Eviction releases the SuperLU
handles (C-heap allocations invisible to Python's GC accounting) before
dropping the solver — and never touches execution backends, whose
worker pools are owned by the service, not the session.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np
import scipy.sparse as sp

from repro.lu.cache import pattern_fingerprint
from repro.resilience.checkpoint import config_fingerprint, matrix_fingerprint
from repro.solver import PDSLin

__all__ = ["Session", "SessionCache", "session_key", "session_nbytes"]


def session_key(A: sp.spmatrix, config) -> str:
    """The cache identity of (matrix, config): the checkpoint
    fingerprints joined — byte-identical inputs map to the same
    session, anything else to a different one."""
    return f"{matrix_fingerprint(A)}:{config_fingerprint(config)}"


def _payload_nbytes(obj, seen: set, depth: int) -> int:
    """Recursive byte count of the numpy/scipy payloads hanging off
    ``obj`` — arrays, sparse matrices, and the containers/dataclasses
    holding them. Bounded depth and an id-set keep the sweep linear and
    cycle-safe; scalars, strings and foreign objects (SuperLU handles
    live on the C heap) count as zero."""
    if obj is None or depth < 0 or id(obj) in seen:
        return 0
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if sp.issparse(obj):
        total = 0
        for name in ("data", "indices", "indptr", "row", "col"):
            arr = getattr(obj, name, None)
            if isinstance(arr, np.ndarray):
                total += arr.nbytes
        return total
    if isinstance(obj, (list, tuple, set)):
        return sum(_payload_nbytes(v, seen, depth - 1) for v in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v, seen, depth - 1)
                   for v in obj.values())
    inner = getattr(obj, "__dict__", None)
    if inner is not None and type(obj).__module__.startswith("repro"):
        return sum(_payload_nbytes(v, seen, depth - 1)
                   for v in inner.values())
    return 0


def session_nbytes(solver: PDSLin) -> int:
    """Resident-set estimate of one set-up session: the input matrix,
    the working system, every subdomain's factors and interface blocks,
    and the assembled/factored Schur complement."""
    seen: set = set()
    total = 0
    for obj in (solver.A_input, solver.A, solver.S_tilde,
                solver._schur_factors, solver.subdomains,
                solver.partition):
        total += _payload_nbytes(obj, seen, depth=4)
    return total


def _release_handles(solver: PDSLin) -> None:
    """Drop the SuperLU handles of a session being evicted. The
    factors' numpy arrays stay valid (the solver could be re-attached),
    but the C-side objects are freed now rather than whenever the GC
    gets around to the solver graph."""
    for s in solver.subdomains:
        if s.factors is not None:
            s.factors.handle = None
    if solver._schur_factors is not None:
        solver._schur_factors.handle = None


@dataclass
class Session:
    """One cached, fully-set-up solver plus its accounting."""

    key: str
    solver: PDSLin
    nbytes: int
    #: pattern-only fingerprint — the identity ``update_matrix``
    #: revalidation matches on (same structure, new values)
    pattern_fp: str
    config_fp: str
    #: problem size — lets the service validate fingerprint-addressed
    #: right-hand sides at submit time without touching the solver
    n: int = 0
    hits: int = 0
    solves: int = 0
    rhs_served: int = 0
    extra: dict = field(default_factory=dict)


class SessionCache:
    """LRU over :class:`Session`, bounded by total payload bytes.

    Not thread-safe by itself — the service serializes access on its
    dispatcher. ``budget_bytes=0`` means "no caching": every put
    evicts immediately (useful to force the cold path in tests).
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[str, Session]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    # -- core ops ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Session]:
        return iter(self._entries.values())

    @property
    def used_bytes(self) -> int:
        return sum(s.nbytes for s in self._entries.values())

    def peek(self, key: str) -> Optional[Session]:
        """The session for ``key`` without touching recency or hit
        counts — for admission checks that must not perturb LRU
        order."""
        return self._entries.get(key)

    def get(self, key: str) -> Optional[Session]:
        """The session for ``key`` (refreshing its recency), or None —
        the miss is *not* counted here, only when the caller actually
        builds the session (lookups by fingerprint probe first)."""
        session = self._entries.get(key)
        if session is None:
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        session.hits += 1
        return session

    def put(self, session: Session) -> list[Session]:
        """Insert (counting one miss) and evict LRU sessions until the
        budget holds again; the inserted session itself is never
        evicted on its own insert, however large. Returns the evicted
        sessions (handles already released)."""
        self.misses += 1
        self._entries[session.key] = session
        self._entries.move_to_end(session.key)
        evicted = []
        while self.used_bytes > self.budget_bytes and len(self._entries) > 1:
            old_key, old = next(iter(self._entries.items()))
            if old_key == session.key:
                break
            evicted.append(self.pop(old_key))
        return evicted

    def pop(self, key: str) -> Session:
        """Remove ``key``, releasing its SuperLU handles."""
        session = self._entries.pop(key)
        _release_handles(session.solver)
        self.evictions += 1
        self.evicted_bytes += session.nbytes
        return session

    def rekey(self, old_key: str, new_key: str) -> Session:
        """Rebind a session after in-place revalidation
        (``update_matrix``): same solver object, new matrix
        fingerprint. Recency and hit counts carry over."""
        session = self._entries.pop(old_key)
        session.key = new_key
        self._entries[new_key] = session
        self._entries.move_to_end(new_key)
        return session

    def find_pattern(self, pattern_fp: str,
                     config_fp: str) -> Optional[Session]:
        """The most recently used session matching (pattern, config) —
        the candidate for ``update_matrix`` revalidation."""
        for session in reversed(self._entries.values()):
            if session.pattern_fp == pattern_fp \
                    and session.config_fp == config_fp:
                return session
        return None

    def clear(self) -> int:
        """Evict everything (handles released); returns bytes freed."""
        freed = 0
        for key in list(self._entries):
            freed += self.pop(key).nbytes
        return freed

    # -- accounting -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "sessions": len(self._entries),
            "used_bytes": self.used_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
        }


def make_session(key: str, solver: PDSLin, A: sp.spmatrix,
                 config) -> Session:
    """Wrap a set-up solver as a cache entry (byte accounting done
    here, after setup, so the factors are included)."""
    return Session(key=key, solver=solver, nbytes=session_nbytes(solver),
                   pattern_fp=pattern_fingerprint(A),
                   config_fp=config_fingerprint(config),
                   n=int(A.shape[0]))
