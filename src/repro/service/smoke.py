"""Traffic-replay smoke for the serving layer.

Drives one :class:`repro.service.SolverService` through the traffic
shapes a long-lived deployment sees — a hot matrix hammered in bursts
(micro-batching + cache hits), cold matrices arriving mid-stream
(admission + setup + possible eviction), fingerprint-addressed
requests, an ``update_matrix`` revalidation (same pattern, new values),
and requests with unmeetable deadlines (structured rejections) — then
checks the invariants that make the service safe to put in front of
the solver:

- every served request converged, and a cache-hit request is
  bit-identical to a fresh single-shot ``PDSLin(...).solve(b)``;
- deadline-doomed requests were rejected with
  :class:`ServiceDeadlineError`, not silently served or dropped;
- the revalidated session serves answers bit-identical to a fresh
  solver built on the new values;
- after ``close()``, no worker process the service started survives.

Run it::

    python -m repro.service.smoke                  # serial + process
    python -m repro.service.smoke --backend serial --requests 48

Exit status 0 only if every check passed on every backend.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time

import numpy as np

from repro.matrices import generate
from repro.obs.tracer import Tracer
from repro.service import ServiceDeadlineError, SolverService
from repro.solver import PDSLin, PDSLinConfig

__all__ = ["run_service_smoke", "main"]

HOT_MATRIX = "tdr190k"
COLD_MATRICES = ("tdr455k", "dds.quad", "matrix211")


def run_service_smoke(backend: str = "serial", *, scale: str = "tiny",
                      n_requests: int = 32, k: int = 4,
                      seed: int = 0) -> dict:
    """Replay the mixed workload against one backend; returns
    ``{"backend", "ok", "checks", "report"}``."""
    rng = np.random.default_rng(seed)
    cfg = PDSLinConfig(k=k, seed=seed)
    hot = generate(HOT_MATRIX, scale).A
    colds = [generate(name, scale).A for name in COLD_MATRICES]
    tracer = Tracer()

    checks: dict[str, bool] = {}
    svc = SolverService(config=cfg, backend=backend, tracer=tracer,
                        batch_window_s=0.01)
    try:
        # -- phase 1: hot bursts with cold matrices interleaved
        futures, parity_pairs = [], []
        n_cold = len(colds)
        for i in range(n_requests):
            if i % 8 == 3 and i // 8 < n_cold:
                A = colds[i // 8]
            else:
                A = hot
            b = rng.standard_normal(A.shape[0])
            fut = svc.submit(A, b)
            futures.append(fut)
            if i in (0, 9):           # one cold, one likely-hot probe
                parity_pairs.append((A, b, fut))
        results = [f.result(timeout=600) for f in futures]
        checks["all_converged"] = all(r.converged for r in results)

        # cache-hit answers must be bit-identical to one-shot solves
        checks["bit_identical"] = all(
            fut.result().x.tobytes() == PDSLin(A, cfg).solve(b).x.tobytes()
            for A, b, fut in parity_pairs)

        # -- phase 2: fingerprint-addressed hot traffic
        fp = svc.fingerprint(hot, cfg)
        b = rng.standard_normal(hot.shape[0])
        checks["fingerprint_path"] = svc.solve(fp, b).converged

        # -- phase 3: revalidation — same pattern, scaled values
        hot2 = hot.copy()
        hot2.data = hot2.data * 1.25
        key2 = svc.update_matrix(hot2)
        b2 = rng.standard_normal(hot2.shape[0])
        served = svc.solve(key2, b2)
        fresh = PDSLin(hot2, cfg).solve(b2)
        checks["revalidated_bit_identical"] = \
            served.x.tobytes() == fresh.x.tobytes()

        # -- phase 4: unmeetable deadlines → structured rejections.
        # Stall dispatch with a queued batch so the doomed requests
        # provably expire while waiting.
        doomed = [svc.submit(key2, rng.standard_normal(hot2.shape[0]),
                             deadline_s=1e-4) for _ in range(3)]
        time.sleep(0.002)
        missed = 0
        for fut in doomed:
            try:
                fut.result(timeout=600)
            except ServiceDeadlineError:
                missed += 1
        checks["deadline_rejections"] = missed >= 1

        report = svc.service_report()
        checks["cache_hits"] = report["cache"]["hits"] > 0
        checks["batching"] = report["requests"]["max_batch_nrhs"] >= 2
        checks["revalidation_counted"] = \
            report["requests"]["revalidations"] == 1
    finally:
        svc.close()

    checks["no_orphan_workers"] = not multiprocessing.active_children()
    return {
        "backend": backend,
        "ok": all(checks.values()),
        "checks": checks,
        "report": report,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer traffic-replay smoke")
    parser.add_argument("--backend", default="both",
                        choices=("serial", "process", "both"),
                        help="execution backend(s) to drive")
    parser.add_argument("--scale", default="tiny",
                        help="matrix scale (default tiny)")
    parser.add_argument("--requests", type=int, default=32,
                        help="phase-1 request count (default 32)")
    parser.add_argument("--json", default=None,
                        help="write the full outcome dicts to this file")
    args = parser.parse_args(argv)

    backends = ("serial", "process:2") if args.backend == "both" \
        else (args.backend if ":" in args.backend
              or args.backend == "serial" else f"{args.backend}:2",)
    outcomes = []
    for backend in backends:
        out = run_service_smoke(backend, scale=args.scale,
                                n_requests=args.requests)
        outcomes.append(out)
        status = "ok" if out["ok"] else "FAIL"
        req = out["report"]["requests"]
        thr = out["report"]["throughput"]
        print(f"[{status}] backend={backend} served={req['served']} "
              f"batches={req['batches']} "
              f"max_batch={req['max_batch_nrhs']} "
              f"cache_hits={out['report']['cache']['hits']} "
              f"deadline_missed={req['deadline_missed']} "
              f"rhs/s={thr['rhs_per_s']:.1f}")
        for name, passed in out["checks"].items():
            if not passed:
                print(f"    check failed: {name}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(outcomes, fh, indent=2, default=str)
    return 0 if all(o["ok"] for o in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())
