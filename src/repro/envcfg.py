"""Typed registry of every ``REPRO_*`` environment variable.

Environment knobs used to be parsed ad hoc in nine modules (exec,
partasks, checkpoint, abft, chaos, conftest, ...), each with its own
copy of the int/float/choice validation boilerplate. This module is the
single source of truth: one :class:`EnvVar` entry per variable carrying
its name, type, default, bounds/choices, and the one-line description
the README environment table is checked against
(``tests/test_envcfg.py`` fails when the two drift).

Consumers call :func:`get`::

    from repro import envcfg
    workers = envcfg.get("REPRO_WORKERS")        # parsed + validated

Unset (or empty) variables return the registered default; malformed
values raise ``ValueError`` naming the variable — the same fail-fast
contract the scattered parsers implemented, with the same messages, so
a typo'd chaos seam still dies with one clear error instead of k opaque
task failures. :func:`validate_all` sweeps the whole registry (the
parent-side pre-flight check), and ``python -m repro.envcfg`` prints
the README-format markdown table.

The module is import-cycle free by design: it depends only on the
standard library, so every layer (``repro.parallel.exec``,
``repro.resilience.abft``, ``benchmarks/conftest.py``) can import it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

__all__ = [
    "EnvVar", "REGISTRY", "var", "get", "get_raw", "validate_all",
    "env_table", "markdown_table", "BITFLIP_TARGETS", "BENCH_SCALES",
]

#: SDC injection sites of the ``REPRO_CHAOS_BITFLIP_TARGET`` seam
#: (:mod:`repro.resilience.abft` imports this — single source).
BITFLIP_TARGETS = ("lu", "schur", "krylov", "transport")

#: Matrix scales understood by the benchmark suite.
BENCH_SCALES = ("tiny", "small", "medium")


def _mp_start_methods() -> list[str]:
    import multiprocessing as mp
    return sorted(mp.get_all_start_methods())


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable.

    ``kind`` selects the parser: ``"int"``/``"float"`` (numeric with an
    optional ``minimum``), ``"str"`` (opaque, validated downstream),
    ``"choice"`` (member of ``choices``, or of ``dynamic_choices()``
    evaluated at parse time), ``"flag01"`` (``'0'``/``'1'`` →
    bool), or ``"truthy"`` (any non-empty value → True). ``noun``
    is the phrase used in the parse-failure message ("an integer
    subdomain index", "a positive integer", ...); ``min_msg`` overrides
    the below-minimum message for variables whose historical error text
    differs from the generic ``must be >= {minimum}``.
    """

    name: str
    kind: str
    description: str
    default: object = None
    minimum: Optional[float] = None
    choices: tuple = ()
    dynamic_choices: Optional[Callable[[], list]] = field(
        default=None, repr=False)
    noun: str = ""
    min_msg: str = ""

    def parse(self, raw: str):
        """Parse+validate one raw string (never None/empty here)."""
        if self.kind == "int" or self.kind == "float":
            cast = int if self.kind == "int" else float
            noun = self.noun or ("an integer" if self.kind == "int"
                                 else "a number")
            try:
                value = cast(raw)
            except ValueError:
                raise ValueError(f"{self.name} must be {noun}, "
                                 f"got {raw!r}") from None
            if self.minimum is not None and value < self.minimum:
                msg = self.min_msg or f"must be >= {self.minimum:g}"
                raise ValueError(f"{self.name} {msg}, got {raw!r}")
            return value
        if self.kind == "choice":
            valid = (self.dynamic_choices() if self.dynamic_choices
                     else self.choices)
            if raw not in valid:
                raise ValueError(f"{self.name} must be one of {valid}, "
                                 f"got {raw!r}")
            return raw
        if self.kind == "flag01":
            if raw == "1":
                return True
            if raw == "0":
                return False
            raise ValueError(f"{self.name} must be '0' or '1', "
                             f"got {raw!r}")
        if self.kind == "truthy":
            return True
        return raw  # "str": validated by its consumer

    def get(self, env: Optional[Mapping[str, str]] = None):
        """The parsed value from ``env`` (default: ``os.environ``),
        or the registered default when unset/empty."""
        raw = (os.environ if env is None else env).get(self.name)
        if raw is None or raw == "":
            return self.default
        return self.parse(raw)


def _subdomain(name: str, description: str) -> EnvVar:
    return EnvVar(name, "int", description, minimum=0,
                  noun="an integer subdomain index")


_VARS = (
    # -- execution backends (repro.parallel.exec) --
    EnvVar("REPRO_BACKEND", "str",
           "Default execution backend (`serial`, `thread`, `process`, "
           "optionally `:N`) when `PDSLin(backend=None)`."),
    EnvVar("REPRO_WORKERS", "int",
           "Worker count for the backend chosen via `REPRO_BACKEND`.",
           minimum=1, noun="a positive integer",
           min_msg="must be a positive integer"),
    EnvVar("REPRO_MP_START", "choice",
           "Multiprocessing start method override "
           "(`fork`/`spawn`/`forkserver`).",
           dynamic_choices=_mp_start_methods),
    EnvVar("REPRO_TRANSPORT_CHECKSUM", "flag01",
           "`0` disables blake2b sealing of process-backend task results "
           "(default `1`, on).", default=True),
    # -- serving layer (repro.service) --
    EnvVar("REPRO_SERVICE_CACHE_BYTES", "int",
           "Byte budget of the `SolverService` session cache "
           "(default 256 MiB); least-recently-used sessions are evicted "
           "past it.", default=256 * 1024 * 1024, minimum=0),
    EnvVar("REPRO_SERVICE_BATCH_WINDOW_S", "float",
           "Micro-batching window of the `SolverService` request queue: "
           "how long a dispatch waits to coalesce same-matrix requests "
           "(default 0.005 s).", default=0.005, minimum=0.0),
    EnvVar("REPRO_SERVICE_MAX_PENDING", "int",
           "Backpressure limit of the `SolverService` request queue; "
           "submits past it are rejected with "
           "`ServiceOverloadedError` (default 256).",
           default=256, minimum=1, noun="a positive integer",
           min_msg="must be a positive integer"),
    # -- benchmarks --
    EnvVar("REPRO_BENCH_SCALE", "choice",
           "Matrix scale for `benchmarks/` runs (`tiny`/`small`/`medium`).",
           choices=BENCH_SCALES),
    EnvVar("REPRO_BENCH_RESULTS_DIR", "str",
           "Directory where benchmark text outputs are archived "
           "(default `benchmarks/results/`)."),
    EnvVar("REPRO_RUN_BENCH", "truthy",
           "Any non-empty value opts `pytest benchmarks/` into the full "
           "benchmark sweep (normally skipped).", default=False),
    # -- chaos seams --
    _subdomain("REPRO_CHAOS_CRASH_SUBDOMAIN",
               "Chaos: worker executing this subdomain dies mid-task "
               "(crash/failover drill)."),
    _subdomain("REPRO_CHAOS_STRAGGLE_SUBDOMAIN",
               "Chaos: this subdomain's task sleeps before returning "
               "(straggler drill)."),
    EnvVar("REPRO_CHAOS_STRAGGLE_S", "float",
           "Chaos: straggler sleep seconds (default 0.25).",
           default=0.25, minimum=0.0, noun="a number of seconds"),
    EnvVar("REPRO_CHAOS_BITFLIP_TARGET", "choice",
           "Chaos: SDC injection site — `lu`, `schur`, `krylov`, or "
           "`transport`.", choices=BITFLIP_TARGETS),
    EnvVar("REPRO_CHAOS_BITFLIP_SEED", "int",
           "Chaos: RNG seed for the flip; part of the one-shot key, so a "
           "new seed re-arms pooled workers (default 0).",
           default=0, minimum=0),
    EnvVar("REPRO_CHAOS_BITFLIP_SUBDOMAIN", "int",
           "Chaos: victim subdomain for subdomain-scoped targets "
           "(default 0).", default=0, minimum=0),
    EnvVar("REPRO_CHAOS_BITFLIP_COUNT", "int",
           "Chaos: number of bits to flip (default 1).",
           default=1, minimum=1),
    _subdomain("REPRO_CHECKPOINT_KILL_AFTER_SUBDOMAIN",
               "Chaos: SIGTERM the process right after this subdomain's "
               "checkpoint shard is written (restart drill)."),
)

REGISTRY: dict[str, EnvVar] = {v.name: v for v in _VARS}


def var(name: str) -> EnvVar:
    """The registry entry for ``name`` (KeyError on unregistered)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"{name} is not a registered REPRO_* variable; "
                       f"add it to repro.envcfg.REGISTRY") from None


def get(name: str, env: Optional[Mapping[str, str]] = None):
    """Parsed value of registered variable ``name`` (see
    :meth:`EnvVar.get`)."""
    return var(name).get(env)


def get_raw(name: str,
            env: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """The raw (unparsed) string, None when unset — for consumers whose
    validation is inherently downstream (backend spec strings)."""
    var(name)  # still insist the variable is registered
    return (os.environ if env is None else env).get(name)


def validate_all(env: Optional[Mapping[str, str]] = None) -> None:
    """Parse every registered variable that is set, raising the first
    ``ValueError`` (which names the variable). The pre-flight sweep for
    long-running entry points."""
    for v in REGISTRY.values():
        v.get(env)


def env_table() -> list[tuple[str, str]]:
    """(name, description) rows in registry order — what the README
    environment table must contain."""
    return [(v.name, v.description) for v in _VARS]


def markdown_table() -> str:
    """The README-format markdown environment table."""
    lines = ["| Variable | Meaning |", "| --- | --- |"]
    lines += [f"| `{name}` | {desc} |" for name, desc in env_table()]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - trivial CLI
    print(markdown_table())
