"""Numerical-breakdown recovery ladders.

:func:`factorize_resilient` is the subdomain-LU ladder PDSLin climbs
when a factorization breaks down (SuperLU-style):

1. threshold pivoting at the caller's ``diag_pivot_thresh`` (the
   structure-preserving default);
2. full partial pivoting (``diag_pivot_thresh=1.0``) — trades the
   e-tree-faithful structure for numerical robustness;
3. static pivot perturbation: the reference Gilbert-Peierls kernel with
   tiny pivots replaced by ``sqrt(eps)·max|A|`` (the SuperLU_DIST
   static-pivoting trick), reporting how many pivots were perturbed.

Each escalation records a :class:`~repro.resilience.report.RecoveryEvent`
and emits ``recovery_*`` tracer counters.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.errors import SingularSubdomainError
from repro.resilience.report import RecoveryReport, emit_recovery

__all__ = ["factorize_resilient"]


def factorize_resilient(A, *, diag_pivot_thresh: float = 0.0,
                        stage: str = "LU(D)", subdomain: int | None = None,
                        report: RecoveryReport | None = None,
                        tracer: Tracer = NULL_TRACER):
    """Factorize ``A``, escalating through the pivoting ladder on
    breakdown.

    Returns ``(factors, perturbations)`` where ``perturbations`` is the
    number of statically perturbed pivots (0 unless the last rung ran).
    Raises :class:`SingularSubdomainError` only if every rung fails.
    """
    # imported lazily: repro.lu itself imports repro.resilience.errors,
    # so a module-level import here would be circular
    from repro.lu.numeric import GilbertPeierlsLU, factorize

    if report is None:
        report = RecoveryReport()
    try:
        return factorize(A, diag_pivot_thresh=diag_pivot_thresh,
                         keep_handle=True, tracer=tracer), 0
    except (RuntimeError, ValueError) as first:
        ladder_exc = first
        if diag_pivot_thresh < 1.0:
            emit_recovery(tracer, report, stage, "full-pivot", first,
                          detail="escalating to full partial pivoting",
                          subdomain=subdomain)
            try:
                with tracer.span("recover", stage=stage, action="full-pivot"):
                    return factorize(A, diag_pivot_thresh=1.0,
                                     keep_handle=True, tracer=tracer), 0
            except (RuntimeError, ValueError) as second:
                ladder_exc = second
        emit_recovery(tracer, report, stage, "static-pivot", ladder_exc,
                      detail="static pivot perturbation (sqrt(eps)*||A||)",
                      subdomain=subdomain)
        try:
            with tracer.span("recover", stage=stage, action="static-pivot"):
                lu = GilbertPeierlsLU(A, pivot_threshold=1.0,
                                      static_pivoting=True,
                                      subdomain=subdomain)
        except SingularSubdomainError:
            raise
        except (RuntimeError, ValueError) as last:
            raise SingularSubdomainError(
                f"factorization failed at every rung of the pivoting "
                f"ladder: {last}", stage=stage, subdomain=subdomain,
            ) from last
        report.perturbed_pivots += lu.perturbations
        tracer.count("perturbed_pivots", lu.perturbations)
        return lu.factors, lu.perturbations
