"""Algorithm-based fault tolerance: checksums and bit-flip injection.

Silent data corruption (SDC) — a bit flipping in memory or in transit
without any crash — is invisible to the crash/straggler machinery of
this package. Each stage of the PDSLin pipeline, however, carries a
cheap algebraic invariant (Huang-Abraham style checksums), and this
module implements them:

- **Factor checksums** (:class:`FactorChecksums`): column-sum vectors of
  ``L``/``U`` recorded right after factorization, plus the identity
  ``(1^T L) U = 1^T A`` in factored coordinates. :func:`verify_factors`
  recomputes and compares — a flipped bit anywhere in the factor data
  (or in the stored checksum itself) trips it. The same record powers a
  passive per-solve audit: ``1^T A x = 1^T b`` costs two O(n) dot
  products per triangular solve (see ``LUFactors.solve``).
- **Matrix checksums** (:func:`checksum_matrix` /
  :func:`verify_matrix_checksum`): column sums of a sparse matrix,
  used on each subdomain's local Schur update T̃ before assembly and on
  the assembled S̃ before LU(S) / after checkpoint resume.
- **A seeded bit-flip injector** (:func:`maybe_bitflip`,
  ``REPRO_CHAOS_BITFLIP_*`` seams) that corrupts a chosen pipeline
  stage deterministically, so the detectors can be drilled end to end
  on every backend (``python -m repro.resilience.chaos --scenario
  bitflip``).

Checksum comparisons that recompute the *same* floating-point sum over
the same data are bit-deterministic, so their tolerances are tiny; the
algebraic identities are normwise-calibrated at attach time so that
ill-conditioned or statically-perturbed factorizations do not false
positive (the ``ROBUST_SUITE`` matrices are part of the test gate).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import envcfg
from repro.envcfg import BITFLIP_TARGETS

__all__ = [
    "ABFT_MODES", "check_abft_mode", "abft_detect", "abft_recover",
    "FactorChecksums", "attach_factor_checksums", "verify_factors",
    "AuditResult", "checksum_matrix", "verify_matrix_checksum",
    "BitflipSeam", "bitflip_seam", "validate_bitflip_env",
    "bitflip_armed", "maybe_bitflip", "corrupt_shipped_value",
    "maybe_corrupt_transport", "reset_bitflip_state", "BITFLIP_TARGETS",
    "ENV_BITFLIP_TARGET", "ENV_BITFLIP_COUNT", "ENV_BITFLIP_SEED",
    "ENV_BITFLIP_SUBDOMAIN",
]

#: The ``abft=`` knob on PDSLinConfig: ``off`` disables everything,
#: ``detect`` checks and reports but keeps going, ``detect+recover``
#: additionally climbs the recovery ladder.
ABFT_MODES = ("off", "detect", "detect+recover")


def check_abft_mode(mode: str) -> str:
    if mode not in ABFT_MODES:
        raise ValueError(f"abft must be one of {ABFT_MODES}, got {mode!r}")
    return mode


def abft_detect(mode: str) -> bool:
    """True when checksum verification is on (detect or detect+recover)."""
    return mode in ("detect", "detect+recover")


def abft_recover(mode: str) -> bool:
    """True when detections should trigger the recovery ladder."""
    return mode == "detect+recover"


# -- audit results ----------------------------------------------------------

@dataclass
class AuditResult:
    """Outcome of one integrity check: ``rel`` is the worst relative
    discrepancy normalized so that ``ok`` means ``rel <= 1``."""

    ok: bool
    rel: float
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


# -- factor checksums -------------------------------------------------------

#: Recompute-vs-stored comparisons re-add the same floats in the same
#: order; anything beyond round-off noise is corruption.
MEMORY_TOL = 1e-12
#: Algebraic identity (1^T L) U = 1^T A, normwise relative to
#: |1^T| |L| |U| + |1^T A| — safe for ill-conditioned systems.
IDENTITY_TOL = 1e-8
#: Per-solve audit 1^T A x = 1^T b, normwise; loose enough for
#: statically-perturbed pivots, tight enough for high-bit flips.
SOLVE_TOL = 1e-5


def _canonical(M: sp.spmatrix) -> sp.spmatrix:
    """Return ``M`` with sorted indices, WITHOUT mutating it: checksums
    must be computed in a canonical summation order (several scipy ops
    sort lazily in place as a side effect, which would make a later
    recompute disagree with the stored sums in the last bits) — but
    sorting the caller's matrix in place would perturb the bit-level
    behaviour of downstream sparse kernels, breaking the contract that
    ABFT observes the pipeline without changing it."""
    if hasattr(M, "has_sorted_indices") and not M.has_sorted_indices:
        M = M.copy()
        M.sort_indices()
    return M


def _colsum(M: sp.spmatrix) -> np.ndarray:
    return np.asarray(_canonical(M).sum(axis=0), dtype=np.float64).ravel()


def _abs_colsum(M: sp.spmatrix) -> np.ndarray:
    return np.asarray(abs(_canonical(M)).sum(axis=0),
                      dtype=np.float64).ravel()


@dataclass
class FactorChecksums:
    """Checksum record attached to :class:`repro.lu.LUFactors`.

    ``colsum_A``/``abs_colsum_A`` are column sums of the pre-permuted
    input gathered into factored column positions (row permutations do
    not change column sums). ``base_identity_rel`` calibrates the
    ``(1^T L) U = 1^T A`` identity at attach time so statically
    perturbed or ill-conditioned factorizations verify cleanly.
    Pickles with the factors and survives the handle-stripping
    ``__getstate__``.
    """

    colsum_L: np.ndarray
    colsum_U: np.ndarray
    colsum_A: np.ndarray
    abs_colsum_A: np.ndarray
    identity_den: float
    base_identity_rel: float
    armed: bool = True
    checks: int = 0
    violations: int = 0
    worst_rel: float = 0.0
    last_detail: str = ""

    def reset_counters(self) -> None:
        self.checks = 0
        self.violations = 0
        self.worst_rel = 0.0
        self.last_detail = ""

    def audit_solve(self, factors, b: np.ndarray, x: np.ndarray) -> None:
        """Passive end-to-end check ``1^T A x = 1^T b`` after one
        triangular-solve pair. Works identically for the SuperLU-handle
        and explicit-factor paths; violations are counted here and
        swept by the solver after the stage completes.

        A 2-D ``x`` (one column per right-hand side) is audited as one
        vectorized check ``1^T A X = 1^T B`` — a single ``checks``
        increment per block, with the worst column's discrepancy
        recorded."""
        if not self.armed or x.ndim > 2:
            return
        xp = x[factors.perm_c]
        if x.ndim == 2:
            lhs = self.colsum_A @ xp
            rhs = b.sum(axis=0)
            den = self.abs_colsum_A @ np.abs(xp) + np.abs(b).sum(
                axis=0) + 1e-300
            rel = float(np.max(np.abs(lhs - rhs) / den)) / SOLVE_TOL \
                if x.shape[1] else 0.0
        else:
            lhs = float(self.colsum_A @ xp)
            rhs = float(b.sum())
            den = float(self.abs_colsum_A @ np.abs(xp)) + float(
                np.abs(b).sum()) + 1e-300
            rel = abs(lhs - rhs) / den / SOLVE_TOL
        self.checks += 1
        if rel > 1.0:
            self.violations += 1
            if rel > self.worst_rel:
                self.worst_rel = rel
                self.last_detail = (
                    f"solve checksum off by {rel:.2e}x tolerance")


def attach_factor_checksums(factors, A_pre: sp.spmatrix) -> FactorChecksums:
    """Compute and attach a :class:`FactorChecksums` for factors of the
    pre-permuted matrix ``A_pre`` (the exact matrix handed to
    ``factorize``; ``L U = A_pre[perm_r][:, perm_c]``)."""
    colsum_L = _colsum(factors.L)
    colsum_U = _colsum(factors.U)
    colsum_A = _colsum(A_pre)[factors.perm_c]
    abs_colsum_A = _abs_colsum(A_pre)[factors.perm_c]
    lhs = colsum_L @ factors.U
    den = float(np.max(_abs_colsum(factors.L) @ abs(factors.U)
                       + abs_colsum_A)) + 1e-300
    base_rel = float(np.max(np.abs(lhs - colsum_A))) / den
    cs = FactorChecksums(
        colsum_L=colsum_L, colsum_U=colsum_U, colsum_A=colsum_A,
        abs_colsum_A=abs_colsum_A, identity_den=den,
        base_identity_rel=base_rel)
    factors.checksums = cs
    return cs


def verify_factors(factors) -> AuditResult:
    """Audit the factor data against the attached checksums.

    Three checks, worst one wins: recomputed column sums of ``L`` and
    ``U`` against the stored vectors (bit-deterministic — catches any
    flip in the factor data *or* in the stored checksums), and the
    algebraic identity ``(1^T L) U = 1^T A`` (catches correlated
    corruption), calibrated against the attach-time discrepancy.
    Usable serially and worker-side before results ship.
    """
    cs = getattr(factors, "checksums", None)
    if cs is None:
        return AuditResult(ok=True, rel=0.0, detail="no checksums attached")
    scale = float(np.max(np.abs(cs.colsum_U))) + float(
        np.max(np.abs(cs.colsum_L))) + 1e-300
    rel_L = float(np.max(np.abs(_colsum(factors.L) - cs.colsum_L))) \
        / scale / MEMORY_TOL
    rel_U = float(np.max(np.abs(_colsum(factors.U) - cs.colsum_U))) \
        / scale / MEMORY_TOL
    ident = _colsum(factors.L) @ factors.U - cs.colsum_A
    tol_ident = max(IDENTITY_TOL, 4.0 * cs.base_identity_rel)
    rel_I = float(np.max(np.abs(ident))) / cs.identity_den / tol_ident
    rel = max(rel_L, rel_U, rel_I)
    which = {rel_L: "L column sums", rel_U: "U column sums",
             rel_I: "LU identity"}[rel]
    return AuditResult(ok=rel <= 1.0, rel=rel,
                       detail=f"{which} off by {rel:.2e}x tolerance"
                       if rel > 1.0 else f"clean (worst {which})")


# -- matrix checksums (Comp(S) contributions, assembled Schur) --------------

def checksum_matrix(M: sp.spmatrix) -> np.ndarray:
    """Column-sum checksum vector of a sparse matrix."""
    return _colsum(M)


def verify_matrix_checksum(M: sp.spmatrix, stored: np.ndarray) -> AuditResult:
    """Recompute ``M``'s column sums and compare to the stored vector.

    Recompute-vs-stored over identical data is bit-deterministic up to
    sparse canonicalization round-off, so the tolerance is
    :data:`MEMORY_TOL` relative to the absolute column sums."""
    fresh = _colsum(M)
    den = float(np.max(_abs_colsum(M))) + float(
        np.max(np.abs(stored))) + 1e-300
    rel = float(np.max(np.abs(fresh - stored))) / den / MEMORY_TOL
    return AuditResult(ok=rel <= 1.0, rel=rel,
                       detail=f"column sums off by {rel:.2e}x tolerance"
                       if rel > 1.0 else "clean")


# -- seeded bit-flip injection ---------------------------------------------

#: Chaos seam: which pipeline stage the injector corrupts.
ENV_BITFLIP_TARGET = "REPRO_CHAOS_BITFLIP_TARGET"
#: Number of bits to flip (default 1).
ENV_BITFLIP_COUNT = "REPRO_CHAOS_BITFLIP_COUNT"
#: RNG seed for the flip positions (default 0). Also part of the
#: one-shot key, so distinct seeds re-arm pooled workers.
ENV_BITFLIP_SEED = "REPRO_CHAOS_BITFLIP_SEED"
#: Victim subdomain for subdomain-scoped targets (lu, transport);
#: default 0.
ENV_BITFLIP_SUBDOMAIN = "REPRO_CHAOS_BITFLIP_SUBDOMAIN"

# one-shot registry: (target, subdomain, seed, count) that already fired
# in this process. Workers in a shared pool keep their copy — chaos
# drills vary the seed per leg to re-arm them.
_FIRED: set = set()


def reset_bitflip_state() -> None:
    """Forget which seams fired (test/drill isolation, this process)."""
    _FIRED.clear()


@dataclass
class BitflipSeam:
    """Parsed ``REPRO_CHAOS_BITFLIP_*`` environment."""

    target: str
    count: int = 1
    seed: int = 0
    subdomain: int = 0

    def key(self, subdomain) -> tuple:
        return (self.target, subdomain, self.seed, self.count)


def bitflip_seam() -> BitflipSeam | None:
    """Parse the bit-flip seam from the environment (None when unset).
    Malformed values raise a ``ValueError`` naming the variable
    (parsed through the :mod:`repro.envcfg` registry)."""
    target = envcfg.get(ENV_BITFLIP_TARGET)
    if target is None:
        return None
    return BitflipSeam(
        target=target,
        count=envcfg.get(ENV_BITFLIP_COUNT),
        seed=envcfg.get(ENV_BITFLIP_SEED),
        subdomain=envcfg.get(ENV_BITFLIP_SUBDOMAIN))


def validate_bitflip_env() -> None:
    """Fail fast on malformed ``REPRO_CHAOS_BITFLIP_*`` values (part of
    the parent-side chaos env validation)."""
    bitflip_seam()


def bitflip_armed(target: str, subdomain: int | None = None) -> bool:
    """True when the seam targets this call site and has not fired yet
    in this process."""
    seam = bitflip_seam()
    if seam is None or seam.target != target:
        return False
    if subdomain is not None and seam.subdomain != subdomain:
        return False
    return seam.key(subdomain) not in _FIRED


# exponent bits tried for each flip, highest impact first; bit 62 is
# skipped because it can take a normal value straight to Inf/NaN (a
# *loud* corruption — we are drilling the silent kind).
_FLIP_BITS = (57, 58, 56, 55, 54, 53)


def _flip_element(arr: np.ndarray, idx: int) -> tuple[int, float, float]:
    """Flip one exponent bit of ``arr[idx]`` in place, choosing the
    first candidate bit that yields a finite, representable value.
    Returns (bit, old, new)."""
    bits = arr[idx:idx + 1].view(np.uint64)
    old = float(arr[idx])
    for bit in _FLIP_BITS:
        flipped = bits[0] ^ np.uint64(1 << bit)
        cand = np.array([flipped], dtype=np.uint64).view(np.float64)[0]
        if np.isfinite(cand) and abs(cand) < 1e300:
            bits[0] = flipped
            return bit, old, float(arr[idx])
    return -1, old, old


def flip_bits(arrays, *, rng: np.random.Generator,
              count: int = 1) -> list[tuple[int, int, int, float, float]]:
    """Flip ``count`` exponent bits across the given float64 arrays,
    in place. Victim elements are the largest-magnitude entries (so a
    single flip is always a normwise-visible corruption — the drills
    must be deterministic, not lucky). Returns
    ``(array_index, element_index, bit, old, new)`` records."""
    pool = [(i, a) for i, a in enumerate(arrays)
            if a is not None and a.size > 0 and a.dtype == np.float64]
    records = []
    if not pool:
        return records
    for flip in range(count):
        ai, arr = pool[int(rng.integers(0, len(pool)))]
        order = np.argsort(-np.abs(arr), kind="stable")
        idx = int(order[flip % arr.size])
        bit, old, new = _flip_element(arr, idx)
        if bit >= 0:
            records.append((ai, idx, bit, old, new))
    return records


def maybe_bitflip(target: str, arrays, *,
                  subdomain: int | None = None) -> int:
    """Fire the bit-flip seam if it is armed for this site: corrupt the
    given arrays in place (one-shot per process per seam key). Returns
    the number of flips applied. Injection is independent of the
    ``abft`` mode — corruption does not care whether defenses are on."""
    seam = bitflip_seam()
    if seam is None or seam.target != target:
        return 0
    if subdomain is not None and seam.subdomain != subdomain:
        return 0
    key = seam.key(subdomain)
    if key in _FIRED:
        return 0
    _FIRED.add(key)
    rng = np.random.default_rng(seam.seed)
    return len(flip_bits(arrays, rng=rng, count=seam.count))


# -- transport corruption (process-backend payloads) ------------------------

def _collect_float_arrays(obj, out: list, seen: set) -> None:
    oid = id(obj)
    if oid in seen:
        return
    seen.add(oid)
    if isinstance(obj, np.ndarray):
        if obj.dtype == np.float64 and obj.size > 0:
            out.append(obj)
        return
    if sp.issparse(obj):
        _collect_float_arrays(obj.data, out, seen)
        return
    if isinstance(obj, dict):
        for v in obj.values():
            _collect_float_arrays(v, out, seen)
        return
    if isinstance(obj, (list, tuple)):
        for v in obj:
            _collect_float_arrays(v, out, seen)
        return
    d = getattr(obj, "__dict__", None)
    if d is not None:
        for v in d.values():
            _collect_float_arrays(v, out, seen)


def maybe_corrupt_transport(value, *, subdomain: int | None = None):
    """Fire the transport bit-flip seam if armed for this payload:
    return a corrupted deep copy of ``value`` to put on the wire (the
    caller ships it under the digest of the *original*), or None when
    the seam is idle. One-shot per process per seam key."""
    seam = bitflip_seam()
    if seam is None or seam.target != "transport":
        return None
    if subdomain is not None and seam.subdomain != subdomain:
        return None
    key = seam.key(subdomain)
    if key in _FIRED:
        return None
    corrupted = corrupt_shipped_value(value, seam)
    if corrupted is not None:
        _FIRED.add(key)
    return corrupted


def corrupt_shipped_value(value, seam: BitflipSeam):
    """Return a deep copy of a task result with one payload bit flipped
    — the transport-corruption model: the bytes on the wire differ from
    the bytes the worker hashed. Returns None when the value carries no
    float64 payload to corrupt."""
    clone = pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    arrays: list = []
    _collect_float_arrays(clone, arrays, set())
    if not arrays:
        return None
    rng = np.random.default_rng(seam.seed)
    flipped = flip_bits(arrays, rng=rng, count=seam.count)
    return clone if flipped else None
