"""Degraded-mode accounting: what recovery did, and whether the solve
that came back is running at full health.

Every recovery action in the pipeline records a :class:`RecoveryEvent`
on the solver's :class:`RecoveryReport`; the report rides on
:class:`repro.solver.PDSLinResult` so a solve that survived only
through degradation (static pivot perturbation, failover to the root
process, a weakened-then-refreshed preconditioner, a Krylov-method
switch) says so instead of pretending nothing happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["RecoveryEvent", "RecoveryReport", "DEGRADING_ACTIONS",
           "emit_recovery"]

# Actions after which the solve no longer reflects the requested
# configuration at full health: perturbed factors, lost processes,
# rebuilt preconditioners, switched Krylov methods, refinement that
# gave up before certifying the answer, detected-but-unrepaired
# silent data corruption.
DEGRADING_ACTIONS = frozenset({
    "static-pivot", "failover-root", "deadline-failover",
    "precond-refresh", "krylov-fallback", "refine-stall",
    "sdc-unrecoverable",
})


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action: where it happened, what failed, what was done.

    ``action`` is a short verb tag: ``"retry"``, ``"full-pivot"``,
    ``"static-pivot"``, ``"failover-root"``, ``"ilu-to-lu"``,
    ``"precond-refresh"``, ``"krylov-fallback"``. ``error`` is the name
    of the exception class that triggered it.
    """

    stage: str
    action: str
    error: str
    detail: str = ""
    subdomain: int | None = None
    attempt: int = 1

    def describe(self) -> str:
        """One-line human-readable rendering."""
        where = self.stage if self.subdomain is None \
            else f"{self.stage}[l={self.subdomain}]"
        tail = f": {self.detail}" if self.detail else ""
        return f"{where} {self.action} after {self.error}" \
               f" (attempt {self.attempt}){tail}"


@dataclass
class RecoveryReport:
    """Everything the recovery ladder did during one solver's lifetime.

    Cumulative across ``setup()`` and every ``solve()`` on the same
    :class:`repro.solver.PDSLin` instance. ``degraded`` flips true the
    first time an action in :data:`DEGRADING_ACTIONS` runs;
    ``preconditioner_mode`` tracks the *final* Schur preconditioner in
    effect (e.g. ``"ilu"`` -> ``"lu(from-ilu)"`` after a fallback).
    """

    events: List[RecoveryEvent] = field(default_factory=list)
    perturbed_pivots: int = 0
    preconditioner_mode: str = "lu"
    degraded: bool = False
    # CertifiedAccuracy.to_dict() of the most recent solve (None until
    # a certification pass has run)
    accuracy: dict | None = None

    def record(self, stage: str, action: str, error: object, *,
               detail: str = "", subdomain: int | None = None,
               attempt: int = 1) -> RecoveryEvent:
        """Append one event; flips ``degraded`` for degrading actions."""
        name = type(error).__name__ if isinstance(error, BaseException) \
            else str(error)
        ev = RecoveryEvent(stage=stage, action=action, error=name,
                           detail=detail, subdomain=subdomain,
                           attempt=attempt)
        self.events.append(ev)
        if action in DEGRADING_ACTIONS:
            self.degraded = True
        return ev

    def absorb(self, other: "RecoveryReport") -> None:
        """Fold another report into this one (used to merge the local
        reports worker processes accumulate back into the solver's).
        ``preconditioner_mode`` and ``accuracy`` are root-side state and
        stay untouched."""
        self.events.extend(other.events)
        self.perturbed_pivots += other.perturbed_pivots
        self.degraded = self.degraded or other.degraded

    @property
    def healthy(self) -> bool:
        """True when no recovery was needed at all."""
        return not self.events and not self.degraded

    @property
    def retries(self) -> int:
        """Number of plain same-place retries."""
        return sum(1 for e in self.events if e.action == "retry")

    def actions(self) -> Dict[str, int]:
        """Event counts per action tag."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.action] = out.get(e.action, 0) + 1
        return out

    def _accuracy_line(self) -> str | None:
        if not self.accuracy:
            return None
        tag = "CERTIFIED" if self.accuracy.get("certified") \
            else "UNCERTIFIED"
        return (f"  accuracy: {tag} "
                f"berr={self.accuracy.get('berr', float('nan')):.2e} "
                f"cond~{self.accuracy.get('cond_est', float('nan')):.2e} "
                f"refine_steps={self.accuracy.get('refine_steps', 0)}")

    def summary(self) -> str:
        """Multi-line report: health line, then one line per event,
        then the certified-accuracy line when a certification ran."""
        acc = self._accuracy_line()
        if self.healthy:
            head = "recovery: none (full health)"
            return head if acc is None else head + "\n" + acc
        head = (f"recovery: {len(self.events)} events, "
                f"{self.retries} retries, "
                f"{self.perturbed_pivots} perturbed pivots, "
                f"preconditioner={self.preconditioner_mode}, "
                f"{'DEGRADED' if self.degraded else 'full health'}")
        lines = [head] + ["  - " + e.describe() for e in self.events]
        if acc is not None:
            lines.append(acc)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (for metrics/report artifacts)."""
        return {
            "degraded": self.degraded,
            "perturbed_pivots": self.perturbed_pivots,
            "preconditioner_mode": self.preconditioner_mode,
            "retries": self.retries,
            "accuracy": self.accuracy,
            "events": [{"stage": e.stage, "action": e.action,
                        "error": e.error, "detail": e.detail,
                        "subdomain": e.subdomain, "attempt": e.attempt}
                       for e in self.events],
        }


def emit_recovery(tracer, report: RecoveryReport, stage: str, action: str,
                  error: object, *, detail: str = "",
                  subdomain: int | None = None,
                  attempt: int = 1) -> RecoveryEvent:
    """Record one recovery event on ``report`` *and* on the tracer.

    Counters: ``recovery_events`` (total) and one
    ``recovery_<action>`` per action tag, so traced runs expose the
    same accounting as the report. ``tracer`` is any object with the
    :class:`repro.obs.Tracer` counter interface.
    """
    ev = report.record(stage, action, error, detail=detail,
                       subdomain=subdomain, attempt=attempt)
    tracer.count("recovery_events")
    tracer.count("recovery_" + action.replace("-", "_"))
    return ev
