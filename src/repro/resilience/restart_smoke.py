"""Kill-and-resume smoke: prove checkpoint/restart end to end.

The drill this module automates::

    python -m repro.resilience.restart_smoke --backend process:2

1. A **child process** starts a checkpointed PDSLin solve with the
   ``REPRO_CHECKPOINT_KILL_AFTER_SUBDOMAIN`` chaos seam armed: right
   after the chosen subdomain registers with the checkpoint manager,
   the child SIGTERMs itself. The armed handler flushes pending shards
   and re-delivers the signal, so the child dies *by SIGTERM* with a
   consistent checkpoint on disk — exactly what an external kill (a
   batch scheduler preemption, an OOM-adjacent eviction) looks like.
2. The parent **resumes** from that directory and solves to completion.
3. The parent also runs one **uninterrupted reference** solve and
   asserts the resumed result is *byte-identical* (``x.tobytes()`` and
   the full :class:`CertifiedAccuracy` block), and — via tracer span
   counts — that the resumed run refactored **only** the subdomains the
   child had not finished.

Exit status 0 = all assertions held; anything else is a real failure.
CI runs this as the ``restart-smoke`` job on every backend.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import subprocess
import sys
import tempfile

import numpy as np

from repro.resilience.checkpoint import ENV_KILL_AFTER, load_checkpoint

__all__ = ["run_restart_smoke", "main"]

DEFAULT_MATRIX = "tdr190k"


def _accuracy_dict(result) -> dict | None:
    return result.accuracy.to_dict() if result.accuracy is not None else None


def _dicts_equal(a: dict | None, b: dict | None) -> bool:
    """Exact equality, except NaN == NaN (berr/cond fields may be NaN
    by design, e.g. with condest off)."""
    if a is None or b is None:
        return a is b
    if a.keys() != b.keys():
        return False
    for key, va in a.items():
        vb = b[key]
        if isinstance(va, float) and isinstance(vb, float) \
                and math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:
            return False
    return True


def _solve(matrix: str, scale: str, k: int, seed: int, backend: str, *,
           checkpoint: str | None = None, resume: str | None = None,
           tracer=None):
    from repro.matrices.suite import generate
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    gm = generate(matrix, scale)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(gm.A.shape[0])
    solver = PDSLin(gm.A, PDSLinConfig(k=k, seed=seed), M=gm.M,
                    runtime=RuntimeOptions(backend=backend,
                                           checkpoint=checkpoint,
                                           resume=resume, tracer=tracer))
    return solver.solve(b)


def _child_main(args) -> int:
    """Run the to-be-killed solve. Reaching the end means the kill seam
    never fired — report that distinctly."""
    _solve(args.matrix, args.scale, args.k, args.seed, args.backend,
           checkpoint=args.dir)
    print("restart_smoke child: solve finished — kill seam did not fire",
          file=sys.stderr)
    return 3


def run_restart_smoke(*, matrix: str = DEFAULT_MATRIX, scale: str = "tiny",
                      k: int = 4, seed: int = 0, backend: str = "serial",
                      kill_after: int = 1, directory: str | None = None,
                      timeout_s: float = 300.0) -> dict:
    """The full drill; returns the result record (``"ok"`` key)."""
    from repro.obs.tracer import Tracer

    tmp = None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-restart-")
        directory = tmp.name
    try:
        env = dict(os.environ)
        env[ENV_KILL_AFTER] = str(kill_after)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
                env.get("PYTHONPATH")] if p)
        cmd = [sys.executable, "-m", "repro.resilience.restart_smoke",
               "--child", "--matrix", matrix, "--scale", scale,
               "--k", str(k), "--seed", str(seed), "--backend", backend,
               "--dir", directory]
        proc = subprocess.run(cmd, env=env, timeout=timeout_s)
        died_by_sigterm = proc.returncode == -signal.SIGTERM
        state = load_checkpoint(directory)
        done_at_kill = list(state.subdomains_done)

        tracer = Tracer()
        resumed = _solve(matrix, scale, k, seed, backend,
                         checkpoint=directory, resume=directory,
                         tracer=tracer)
        restored = int(tracer.counters.get(
            "checkpoint_subdomains_restored", 0))
        refactored = tracer.span_count("factor_subdomain")

        reference = _solve(matrix, scale, k, seed, backend)

        record = {
            "matrix": matrix, "scale": scale, "k": k, "seed": seed,
            "backend": backend, "kill_after": kill_after,
            "child_died_by_sigterm": died_by_sigterm,
            "child_exit": proc.returncode,
            "subdomains_done_at_kill": done_at_kill,
            "subdomains_restored": restored,
            "subdomains_refactored": refactored,
            "bit_identical": (reference.x.tobytes()
                              == resumed.x.tobytes()),
            "accuracy_identical": _dicts_equal(_accuracy_dict(reference),
                                               _accuracy_dict(resumed)),
            "only_unfinished_redone": (restored == len(done_at_kill)
                                       and refactored == k - restored),
            "residual_norm": resumed.residual_norm,
        }
        record["ok"] = bool(
            died_by_sigterm and done_at_kill
            and record["bit_identical"] and record["accuracy_identical"]
            and record["only_unfinished_redone"])
        return record
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="kill a checkpointed PDSLin solve mid-flight, resume "
                    "it, and assert byte-identity with an uninterrupted run")
    ap.add_argument("--matrix", default=DEFAULT_MATRIX)
    ap.add_argument("--scale", default="tiny",
                    choices=("tiny", "small", "medium"))
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--backend", default="serial",
                    help="execution backend for every run "
                         "(serial/thread/process[:N])")
    ap.add_argument("--kill-after", type=int, default=1,
                    help="SIGTERM the child right after this subdomain "
                         "registers (default 1)")
    ap.add_argument("--dir", default=None,
                    help="checkpoint directory (default: a temp dir)")
    ap.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.child:
        return _child_main(args)

    record = run_restart_smoke(
        matrix=args.matrix, scale=args.scale, k=args.k, seed=args.seed,
        backend=args.backend, kill_after=args.kill_after,
        directory=args.dir)
    print(json.dumps(record, indent=2))
    if not record["ok"]:
        print("RESTART SMOKE FAILED", file=sys.stderr)
        return 1
    print(f"restart smoke ok: killed after subdomain "
          f"{args.kill_after}, restored "
          f"{record['subdomains_restored']}/{args.k}, refactored only "
          f"{record['subdomains_refactored']}, byte-identical result")
    return 0


if __name__ == "__main__":
    sys.exit(main())
