"""Seeded fault injection for the simulated machine.

A :class:`FaultPlan` is a deterministic schedule of faults keyed on
``(stage, process)``: when the :class:`repro.parallel.SimulatedMachine`
enters a matching stage, the plan raises an
:class:`~repro.resilience.errors.InjectedFault` (transient faults fire
a fixed number of times and then clear; permanent faults fire on every
attempt) or, for stragglers, inflates the stage's simulated cost by a
fixed delay. Given the same specs and seed, execution order — and
therefore every fired fault — is identical run to run, which is what
makes chaos tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.resilience.errors import InjectedFault

__all__ = ["FaultSpec", "FiredFault", "FaultPlan"]

FAULT_KINDS = ("transient", "permanent", "straggler", "bitflip")

#: Machine stage -> bit-flip injection target (see
#: :mod:`repro.resilience.abft`). Used when rendering ``bitflip``
#: specs to their ``REPRO_CHAOS_BITFLIP_*`` env seam.
BITFLIP_STAGE_TARGETS = {
    "LU(D)": "lu",
    "LU(S)": "schur",
    "Solve": "krylov",
    "Transport": "transport",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``stage`` names the machine stage it arms on (``"LU(D)"``,
    ``"LU(S)"``, ...); ``process`` the simulated process index, or
    ``None`` for the root process. ``kind``:

    - ``"transient"`` — raises on the first ``trips`` entries of the
      stage, then clears (a retry succeeds);
    - ``"permanent"`` — raises on *every* entry (the work must fail
      over to another process);
    - ``"straggler"`` — never raises, but adds ``delay_s`` of simulated
      time to the stage on every entry;
    - ``"bitflip"`` — never raises and adds no delay: silent data
      corruption does not announce itself. The spec is rendered to the
      ``REPRO_CHAOS_BITFLIP_*`` env seam (:meth:`FaultPlan.bitflip_env`)
      which makes the actual numeric arrays of the matching pipeline
      stage corrupt themselves (``trips`` is the flip count).

    ``recovery_cost_s`` is carried on the raised fault: the simulated
    cost a recovery action charges to the ``Recover`` stage.
    """

    stage: str
    process: int | None = None
    kind: str = "transient"
    trips: int = 1
    delay_s: float = 0.05
    recovery_cost_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, "
                             f"got {self.kind!r}")
        if self.trips < 1:
            raise ValueError("trips must be >= 1")
        if self.delay_s < 0 or self.recovery_cost_s < 0:
            raise ValueError("delay_s and recovery_cost_s must be >= 0")

    def target(self) -> str:
        """``"root"`` or ``"process <i>"`` — for fault messages."""
        return "root" if self.process is None else f"process {self.process}"


@dataclass(frozen=True)
class FiredFault:
    """One fault occurrence, recorded on the plan in firing order."""

    stage: str
    process: int | None
    kind: str
    attempt: int


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    The plan keeps per-spec attempt counters and a ``fired`` log, so the
    same plan driven through the same (serial, deterministic) execution
    produces the same fault sequence. Plans are stateful: call
    :meth:`reset` before reusing one for a second run.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._by_key: Dict[Tuple[str, int | None], List[int]] = {}
        for i, spec in enumerate(self.specs):
            self._by_key.setdefault((spec.stage, spec.process), []).append(i)
        self._attempts: Dict[int, int] = {}
        self.fired: List[FiredFault] = []

    @classmethod
    def random(cls, *, seed: int, k: int,
               stages: Sequence[str] = ("LU(D)", "Comp(S)"),
               rate: float = 0.25, kind: str = "transient",
               delay_s: float = 0.05,
               recovery_cost_s: float = 1e-3) -> "FaultPlan":
        """Draw a plan deterministically from ``seed``: each
        ``(stage, process)`` pair in ``stages`` x ``range(k)`` is armed
        with probability ``rate``."""
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        specs = [FaultSpec(stage, process=ell, kind=kind, delay_s=delay_s,
                           recovery_cost_s=recovery_cost_s)
                 for stage in stages for ell in range(k)
                 if rng.random() < rate]
        return cls(specs, seed=seed)

    def reset(self) -> None:
        """Clear attempt counters and the fired log (reuse for a new run)."""
        self._attempts.clear()
        self.fired.clear()

    def _specs_for(self, stage: str, process: int | None) -> List[int]:
        return self._by_key.get((stage, process), [])

    def before(self, stage: str, process: int | None = None) -> None:
        """Called by the machine on stage entry; raises the first armed
        :class:`InjectedFault` for this ``(stage, process)``."""
        for i in self._specs_for(stage, process):
            spec = self.specs[i]
            if spec.kind in ("straggler", "bitflip"):
                continue
            attempt = self._attempts.get(i, 0) + 1
            self._attempts[i] = attempt
            if spec.kind == "permanent" or attempt <= spec.trips:
                self.fired.append(FiredFault(stage=stage, process=process,
                                             kind=spec.kind, attempt=attempt))
                raise InjectedFault(
                    f"injected {spec.kind} fault in {stage} on "
                    f"{spec.target()} (attempt {attempt})",
                    kind="permanent" if spec.kind == "permanent"
                    else "transient",
                    stage=stage, subdomain=spec.process,
                    recovery_cost_s=spec.recovery_cost_s)

    def after(self, stage: str, process: int | None = None) -> float:
        """Called by the machine on successful stage exit; returns the
        straggler delay (simulated seconds) to add to the stage cost."""
        delay = 0.0
        for i in self._specs_for(stage, process):
            spec = self.specs[i]
            if spec.kind != "straggler":
                continue
            attempt = self._attempts.get(i, 0) + 1
            self._attempts[i] = attempt
            self.fired.append(FiredFault(stage=stage, process=process,
                                         kind="straggler", attempt=attempt))
            delay += spec.delay_s
        return delay

    def bitflip_specs(self) -> Tuple[FaultSpec, ...]:
        """The ``bitflip`` entries of the plan, in schedule order."""
        return tuple(s for s in self.specs if s.kind == "bitflip")

    def bitflip_env(self, spec: FaultSpec | None = None) -> Dict[str, str]:
        """Render a ``bitflip`` spec to its ``REPRO_CHAOS_BITFLIP_*``
        environment seam (the mechanism that actually corrupts the
        arrays — see :mod:`repro.resilience.abft`). Defaults to the
        plan's first bitflip spec; raises ``ValueError`` when the spec's
        stage has no injection target or the plan has no bitflip specs.
        """
        from repro.resilience import abft

        if spec is None:
            specs = self.bitflip_specs()
            if not specs:
                raise ValueError("plan has no bitflip specs")
            spec = specs[0]
        target = BITFLIP_STAGE_TARGETS.get(spec.stage)
        if target is None:
            raise ValueError(
                f"no bit-flip target for stage {spec.stage!r}; known "
                f"stages: {sorted(BITFLIP_STAGE_TARGETS)}")
        env = {
            abft.ENV_BITFLIP_TARGET: target,
            abft.ENV_BITFLIP_COUNT: str(spec.trips),
            abft.ENV_BITFLIP_SEED: str(self.seed),
        }
        if spec.process is not None:
            env[abft.ENV_BITFLIP_SUBDOMAIN] = str(spec.process)
        return env

    def fired_summary(self) -> Dict[str, int]:
        """Counts of fired faults per kind."""
        out: Dict[str, int] = {}
        for f in self.fired:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultPlan({len(self.specs)} specs, seed={self.seed}, "
                f"fired={len(self.fired)})")
