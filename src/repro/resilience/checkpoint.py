"""Integrity-checked checkpoint/restart for the PDSLin pipeline.

Long domain-decomposition factorizations lose everything on an
interrupt; this module snapshots solver state at stage boundaries so a
killed solve resumes where it stopped — and, because every restored
artifact round-trips bit-exactly, produces a **byte-identical** result
to an uninterrupted run (proven by ``repro.parallel.parity --resume``
and ``python -m repro.resilience.restart_smoke``).

On-disk format (one directory per checkpoint):

- ``manifest.json`` — version, the checkpoint *identity* (blake2b
  fingerprints of the input matrix and the solver config, plus ``k``
  and the seed), the list of completed subdomains, and one entry per
  shard: file name, byte length and blake2b digest of the file bytes.
- ``*.npz`` shards — ``partition.npz`` (the DBBD part vector),
  ``sub_NNNN.npz`` per completed subdomain (ordering permutation, LU
  factors with the SuperLU handle stripped — the PR-5 pickling
  machinery — interface solutions G~/W~ᵀ, the local Schur update T~,
  padding stats), and ``schur.npz`` (assembled S~ + the effective drop
  tolerances and preconditioner mode).

Writes are atomic (temp file + ``os.replace``, manifest written last),
so a kill mid-snapshot leaves the previous consistent state. Loads
verify every shard digest against the manifest before unpacking;
corruption or truncation raises :class:`CheckpointError` instead of
resuming from poisoned state.

Policy: :class:`CheckpointPolicy` snapshots every ``every`` completed
subdomains and (optionally) on SIGTERM — the handler flushes pending
shards, restores the previous handler and re-raises the signal so the
process still dies with the honest exit status. The
``REPRO_CHECKPOINT_KILL_AFTER_SUBDOMAIN`` chaos seam SIGTERMs the
process right after a chosen subdomain registers, exercising the
signal-snapshot path end to end (used by ``restart_smoke``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro import envcfg
from repro.obs.tracer import NULL_TRACER
from repro.resilience.errors import CheckpointError

__all__ = [
    "CheckpointPolicy", "CheckpointManager", "CheckpointState",
    "load_checkpoint", "truncate_checkpoint", "matrix_fingerprint",
    "config_fingerprint", "pack_sparse", "unpack_sparse",
    "MANIFEST_NAME", "CHECKPOINT_VERSION", "ENV_KILL_AFTER",
]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"
#: Chaos seam: when set to an integer ℓ, the process SIGTERMs itself
#: right after subdomain ℓ registers with the checkpoint manager —
#: the armed signal handler snapshots, then the process dies.
ENV_KILL_AFTER = "REPRO_CHECKPOINT_KILL_AFTER_SUBDOMAIN"

_DIGEST_SIZE = 16


def _env_kill_after() -> Optional[int]:
    return envcfg.get(ENV_KILL_AFTER)


# -- fingerprints ----------------------------------------------------------

def matrix_fingerprint(A: sp.spmatrix) -> str:
    """blake2b over the CSR structure+values of ``A`` — the identity a
    checkpoint is bound to. Two matrices with the same pattern and
    values (same dtype) fingerprint identically."""
    A = A.tocsr()
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.data, dtype=np.float64).tobytes())
    return h.hexdigest()


#: Config fields that only steer the *solve* phase of an already-set-up
#: solver (multi-RHS Krylov seeding / block-GMRES mode). Checkpoints
#: capture setup state only, so these are excluded from the identity:
#: a checkpoint written under one solve mode resumes bit-exactly under
#: any other, and configs predating the fields keep their fingerprints.
SOLVE_PHASE_FIELDS = frozenset({"krylov_seed", "block_gmres"})


def config_fingerprint(cfg) -> str:
    """blake2b over the sorted field/value repr of a config dataclass.
    Any knob change (drop tolerances, ordering, k, seed, ...) changes
    the fingerprint and invalidates old checkpoints — except the
    solve-phase-only fields of :data:`SOLVE_PHASE_FIELDS`, which do not
    touch checkpointed state."""
    import dataclasses
    items = sorted((k, v) for k, v in dataclasses.asdict(cfg).items()
                   if k not in SOLVE_PHASE_FIELDS)
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(repr(items).encode())
    return h.hexdigest()


# -- sparse (de)serialization ----------------------------------------------

def pack_sparse(out: Dict[str, np.ndarray], name: str,
                M: sp.spmatrix) -> None:
    """Flatten one CSR/CSC matrix into ``out`` under ``name:*`` keys.
    The native format is kept so the round trip is exact and cheap."""
    if sp.isspmatrix_csc(M):
        fmt = "csc"
    else:
        M = M.tocsr()
        fmt = "csr"
    out[f"{name}:fmt"] = np.array(fmt)
    out[f"{name}:shape"] = np.asarray(M.shape, dtype=np.int64)
    out[f"{name}:data"] = M.data
    out[f"{name}:indices"] = M.indices
    out[f"{name}:indptr"] = M.indptr


def unpack_sparse(z, name: str) -> sp.spmatrix:
    """Rebuild a matrix packed by :func:`pack_sparse` from npz ``z``."""
    fmt = str(z[f"{name}:fmt"])
    cls = sp.csc_matrix if fmt == "csc" else sp.csr_matrix
    return cls((z[f"{name}:data"], z[f"{name}:indices"],
                z[f"{name}:indptr"]),
               shape=tuple(int(d) for d in z[f"{name}:shape"]))


# -- shard I/O -------------------------------------------------------------

def _shard_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _write_shard(directory: Path, fname: str,
                 arrays: Dict[str, np.ndarray]) -> dict:
    payload = _shard_bytes(arrays)
    digest = hashlib.blake2b(payload,
                             digest_size=_DIGEST_SIZE).hexdigest()
    _atomic_write(directory / fname, payload)
    return {"file": fname, "blake2b": digest, "bytes": len(payload)}


def subdomain_shard_name(ell: int) -> str:
    return f"sub_{ell:04d}"


# -- policy + manager ------------------------------------------------------

@dataclass(frozen=True)
class CheckpointPolicy:
    """When snapshots hit disk.

    ``every`` — flush after that many newly completed subdomains
    (``1`` = after each). ``on_signal`` — arm a SIGTERM handler while
    the solver runs so an external kill snapshots before dying.
    ``final`` — snapshot at the end of setup (the Schur boundary).
    """

    every: int = 1
    on_signal: bool = True
    final: bool = True

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")


class CheckpointManager:
    """Owns one checkpoint directory: registration, flushing, signals.

    Shards register as *pending* (``register_partition`` /
    ``register_subdomain`` / ``register_schur``) and hit disk on
    ``snapshot()`` — driven by the policy, the armed signal handler, or
    explicitly. A shard already on disk (same name, e.g. when resuming
    into the directory the checkpoint came from) is never rewritten;
    registration is idempotent, so the writer path needs no
    deduplication logic.
    """

    def __init__(self, directory, *, policy: CheckpointPolicy | None = None,
                 tracer=NULL_TRACER):
        self.directory = Path(directory)
        self.policy = policy or CheckpointPolicy()
        self.tracer = tracer
        self._identity: dict | None = None
        self._pending: Dict[str, Dict[str, np.ndarray]] = {}
        self._written: Dict[str, dict] = {}
        self._done_subdomains: list[int] = []
        self._partition_done = False
        self._schur_done = False
        self._state: dict = {}
        self._since_snapshot = 0
        self._prev_handlers: dict = {}
        self._kill_after = _env_kill_after()

    # -- identity ----------------------------------------------------------

    def bind(self, *, matrix_fp: str, config_fp: str, k: int,
             seed) -> None:
        """Bind the manager to one (matrix, config) identity.

        When the directory already holds a valid checkpoint with the
        same identity, its shards are adopted (resume-and-continue
        writes only the new ones); anything else starts fresh.
        """
        identity = {"matrix_blake2b": matrix_fp,
                    "config_blake2b": config_fp,
                    "k": int(k), "seed": repr(seed)}
        self._identity = identity
        self._pending.clear()
        self._written.clear()
        self._done_subdomains = []
        self._partition_done = False
        self._schur_done = False
        self._state = {}
        self._since_snapshot = 0
        try:
            existing = load_checkpoint(self.directory)
        except CheckpointError:
            return
        if existing.manifest.get("identity") != identity:
            return
        self._written = dict(existing.manifest["shards"])
        self._done_subdomains = [int(e) for e in
                                 existing.manifest["subdomains_done"]]
        self._partition_done = bool(
            existing.manifest.get("partition_done"))
        self._schur_done = bool(existing.manifest.get("schur_done"))
        self._state = dict(existing.manifest.get("state", {}))

    def _require_bound(self) -> dict:
        if self._identity is None:
            raise CheckpointError("CheckpointManager.bind() must run "
                                  "before registering or snapshotting")
        return self._identity

    # -- registration ------------------------------------------------------

    def _register(self, name: str,
                  arrays: "Dict[str, np.ndarray] | Callable[[], dict]",
                  ) -> bool:
        """Queue one shard unless it is already pending or on disk.
        ``arrays`` may be a thunk, evaluated only when actually needed
        (restored subdomains re-register for free)."""
        self._require_bound()
        if name in self._written or name in self._pending:
            return False
        self._pending[name] = arrays() if callable(arrays) else arrays
        return True

    def register_partition(self, part: np.ndarray) -> None:
        """The DBBD part vector — everything else derives from it."""
        if self._register("partition",
                          {"part": np.asarray(part, dtype=np.int64)}):
            self._partition_done = True

    def register_subdomain(self, ell: int,
                           arrays: "Dict[str, np.ndarray] | Callable[[], dict]",
                           ) -> None:
        """One completed subdomain (LU + Comp accepted by the parent).
        Applies the every-k policy, then the chaos kill seam."""
        if self._register(subdomain_shard_name(ell), arrays):
            self._done_subdomains.append(int(ell))
            self._since_snapshot += 1
            if self._since_snapshot >= self.policy.every:
                self.snapshot()
        if self._kill_after is not None and int(ell) == self._kill_after:
            # chaos seam: die by SIGTERM so the armed handler (or the
            # default: plain death, losing pending work) runs for real
            os.kill(os.getpid(), signal.SIGTERM)

    def register_schur(self, arrays, *, state: dict | None = None) -> None:
        """The assembled Schur complement — the setup-complete boundary."""
        if state:
            self._state.update(state)
        if self._register("schur", arrays):
            self._schur_done = True
            if self.policy.final:
                self.snapshot()

    # -- snapshotting ------------------------------------------------------

    def snapshot(self) -> Path:
        """Flush pending shards + the manifest (atomically, manifest
        last). Returns the manifest path."""
        identity = self._require_bound()
        with self.tracer.span("checkpoint_write",
                              shards=len(self._pending)):
            self.directory.mkdir(parents=True, exist_ok=True)
            for name in sorted(self._pending):
                entry = _write_shard(self.directory, name + ".npz",
                                     self._pending[name])
                self._written[name] = entry
                self.tracer.count("checkpoint_shards_written")
                self.tracer.count("noise:checkpoint_bytes",
                                  entry["bytes"])
            self._pending.clear()
            manifest = {
                "version": CHECKPOINT_VERSION,
                "kind": "pdslin-checkpoint",
                "identity": identity,
                "shards": self._written,
                "subdomains_done": sorted(self._done_subdomains),
                "partition_done": self._partition_done,
                "schur_done": self._schur_done,
                "state": self._state,
                "written_at": time.time(),
            }
            _atomic_write(self.directory / MANIFEST_NAME,
                          json.dumps(manifest, indent=1).encode())
        self._since_snapshot = 0
        self.tracer.count("checkpoint_snapshots")
        return self.directory / MANIFEST_NAME

    # -- signal arming -----------------------------------------------------

    def arm(self) -> None:
        """Install the snapshot-on-SIGTERM handler (main thread only;
        a no-op elsewhere or when the policy disables it)."""
        if not self.policy.on_signal or self._prev_handlers:
            return
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            self._prev_handlers[signal.SIGTERM] = signal.signal(
                signal.SIGTERM, self._on_signal)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            self._prev_handlers.clear()

    def disarm(self) -> None:
        """Restore the previous SIGTERM handler."""
        for sig, prev in self._prev_handlers.items():
            try:
                signal.signal(sig, prev)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._prev_handlers.clear()

    def _on_signal(self, signum, frame) -> None:
        self.snapshot()
        # re-delivering with the default handler kills the process
        # without running atexit hooks, which would orphan any pool
        # workers (fork workers inherit the parent's pipes and never
        # see EOF) — reap the shared backends first
        try:
            from repro.parallel.exec import _close_shared
            _close_shared()
        except Exception:  # pragma: no cover - never block the exit
            pass
        # restore whatever was there before and re-deliver: the process
        # still dies, with the honest signal exit status
        prev = self._prev_handlers.pop(signum, signal.SIG_DFL)
        try:
            signal.signal(signum, prev)
        except (ValueError, TypeError):  # pragma: no cover
            signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


# -- loading ---------------------------------------------------------------

@dataclass
class CheckpointState:
    """A validated on-disk checkpoint, ready to restore from."""

    directory: Path
    manifest: dict
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def subdomains_done(self) -> list[int]:
        return [int(e) for e in self.manifest["subdomains_done"]]

    @property
    def schur_done(self) -> bool:
        return bool(self.manifest.get("schur_done"))

    @property
    def partition_done(self) -> bool:
        return bool(self.manifest.get("partition_done"))

    @property
    def state(self) -> dict:
        return dict(self.manifest.get("state", {}))

    def has_shard(self, name: str) -> bool:
        return name in self.manifest["shards"]

    def load_shard(self, name: str):
        """Read + integrity-check one shard; returns the opened npz."""
        if name in self._cache:
            return self._cache[name]
        entry = self.manifest["shards"].get(name)
        if entry is None:
            raise CheckpointError(f"checkpoint has no shard {name!r}",
                                  path=str(self.directory))
        path = self.directory / entry["file"]
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint shard {name!r} unreadable: {exc}",
                path=str(path)) from None
        digest = hashlib.blake2b(payload,
                                 digest_size=_DIGEST_SIZE).hexdigest()
        if digest != entry["blake2b"] or len(payload) != entry["bytes"]:
            raise CheckpointError(
                f"checkpoint shard {name!r} failed its blake2b "
                f"integrity check (corrupt or torn write)",
                path=str(path))
        try:
            z = np.load(io.BytesIO(payload), allow_pickle=False)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint shard {name!r} is not a readable npz: "
                f"{exc}", path=str(path)) from None
        self._cache[name] = z
        return z


def load_checkpoint(directory, *, matrix_fp: str | None = None,
                    config_fp: str | None = None,
                    k: int | None = None) -> CheckpointState:
    """Open + validate a checkpoint directory.

    Raises :class:`CheckpointError` on a missing/truncated/corrupt
    manifest, an unknown version, or — when fingerprints are given —
    an identity mismatch.
    """
    directory = Path(directory)
    mpath = directory / MANIFEST_NAME
    try:
        raw = mpath.read_text()
    except OSError as exc:
        raise CheckpointError(f"no readable checkpoint manifest: {exc}",
                              path=str(mpath)) from None
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint manifest is truncated or corrupt: {exc}",
            path=str(mpath)) from None
    for key in ("version", "identity", "shards", "subdomains_done"):
        if key not in manifest:
            raise CheckpointError(
                f"checkpoint manifest is missing {key!r} (truncated?)",
                path=str(mpath))
    if manifest["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest['version']!r} is not "
            f"supported (expected {CHECKPOINT_VERSION})", path=str(mpath))
    ident = manifest["identity"]
    if matrix_fp is not None and ident.get("matrix_blake2b") != matrix_fp:
        raise CheckpointError(
            "checkpoint belongs to a different matrix (fingerprint "
            "mismatch); refusing to resume", path=str(mpath))
    if config_fp is not None and ident.get("config_blake2b") != config_fp:
        raise CheckpointError(
            "checkpoint was written under a different solver config "
            "(fingerprint mismatch); refusing to resume", path=str(mpath))
    if k is not None and ident.get("k") != int(k):
        raise CheckpointError(
            f"checkpoint has k={ident.get('k')} but the solver wants "
            f"k={k}; refusing to resume", path=str(mpath))
    return CheckpointState(directory=directory, manifest=manifest)


def truncate_checkpoint(directory, keep_subdomains: int) -> None:
    """Rewrite the manifest as if the run had died after
    ``keep_subdomains`` completed subdomains: later subdomain shards
    and the Schur shard are dropped from the manifest (files are left
    behind — unreferenced shards are ignored by loads). Used by the
    resume-parity check and the tests to fabricate interrupted runs
    without actually killing anything."""
    state = load_checkpoint(directory)
    manifest = state.manifest
    done = sorted(int(e) for e in manifest["subdomains_done"])
    keep = set(done[:max(0, int(keep_subdomains))])
    shards = {}
    for name, entry in manifest["shards"].items():
        if name == "schur":
            continue
        if name.startswith("sub_") and int(name[4:]) not in keep:
            continue
        shards[name] = entry
    manifest["shards"] = shards
    manifest["subdomains_done"] = sorted(keep)
    manifest["schur_done"] = False
    _atomic_write(Path(directory) / MANIFEST_NAME,
                  json.dumps(manifest, indent=1).encode())
