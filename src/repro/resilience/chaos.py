"""The chaos-smoke scenario: the smoke solve under a seeded FaultPlan.

This is the resilience counterpart of :mod:`repro.obs.smoke` and what
the CI ``chaos-smoke`` job runs: the tiny Table-I matrix through the
full PDSLin pipeline while a standard fault plan injects one
*permanent* subdomain-LU fault (forcing failover to root) and one
*transient* Schur-factorization fault (forcing a retry). The run must
still converge, report a non-empty :class:`RecoveryReport`, show a
``Recover`` stage in the machine breakdown, and the tracer's recovery
counters must match the report — otherwise the process exits non-zero.

``--scenario stragglers`` runs the deadline/speculation drill instead:
the same smoke solve on a parallel backend with the
``REPRO_CHAOS_STRAGGLE_SUBDOMAIN`` seam making one subdomain sleep. A
per-task deadline must cancel the straggler and fail it over to the
root (a recorded, degrading ``deadline-failover``), a speculation
policy must launch duplicate tasks — and both runs must stay
*byte-identical* to the unmitigated serial solve.

``--scenario bitflip`` runs the silent-data-corruption drill: for each
injection target (``lu``, ``schur``, ``krylov``, ``transport``) and
each backend (serial, process), the ``REPRO_CHAOS_BITFLIP_*`` seam
flips one exponent bit mid-pipeline. The defended leg
(``abft="detect+recover"``) must detect the flip, recover per the
integrity ladder, and certify the same answer as a fault-free
reference; the undefended leg (``abft="off"``) must produce a
*different* answer while reporting nothing — proving the corruption is
real and silent without the checksums.

Run directly::

    PYTHONPATH=src python -m repro.resilience.chaos --seed 0 --k 4
    PYTHONPATH=src python -m repro.resilience.chaos --scenario stragglers
    PYTHONPATH=src python -m repro.resilience.chaos --scenario bitflip
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import Tracer
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.report import RecoveryReport

__all__ = ["ChaosRun", "standard_fault_plan", "run_chaos_smoke",
           "run_straggler_smoke", "run_bitflip_smoke"]


def standard_fault_plan(*, k: int = 4, seed: int = 0,
                        process: int | None = None) -> FaultPlan:
    """The canonical CI fault plan: one permanent ``LU(D)`` fault on one
    subdomain process plus one transient ``LU(S)`` fault on root.

    The victim process is drawn deterministically from ``seed`` (or
    forced with ``process``), so the same seed always injures the same
    subdomain.
    """
    if process is None:
        process = int(np.random.default_rng(seed).integers(0, k))
    return FaultPlan([
        FaultSpec(stage="LU(D)", process=process, kind="permanent"),
        FaultSpec(stage="LU(S)", process=None, kind="transient"),
    ], seed=seed)


@dataclass
class ChaosRun:
    """A completed chaos solve with everything the checks need."""

    tracer: Tracer
    recovery: RecoveryReport
    breakdown: dict
    converged: bool
    degraded: bool
    residual_norm: float
    checks: dict[str, bool]

    @property
    def ok(self) -> bool:
        """True when the solve converged *and* every check passed."""
        return bool(self.converged and all(self.checks.values()))


def run_chaos_smoke(*, k: int = 4, seed: int = 0,
                    plan: FaultPlan | None = None) -> ChaosRun:
    """Run the smoke problem under the standard fault plan and verify
    the acceptance conditions.

    Checks recorded in ``ChaosRun.checks``:

    - ``converged`` — the injected faults did not break the solve;
    - ``recovered`` — the recovery report is non-empty;
    - ``recover_stage`` — recovery time shows up as a ``Recover`` stage
      in the simulated-machine breakdown;
    - ``counters_match`` — the tracer's ``recovery_events`` counter
      equals the number of reported events;
    - ``degraded_flagged`` — the permanent fault flipped the degraded
      flag instead of the result claiming full health.
    """
    # imported here so `repro.resilience` stays importable without the
    # solver stack (repro.lu imports our error types at module level)
    from repro.matrices import generate
    from repro.obs.smoke import SMOKE_MATRIX, SMOKE_SCALE
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    if plan is None:
        plan = standard_fault_plan(k=k, seed=seed)
    gm = generate(SMOKE_MATRIX, SMOKE_SCALE)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.shape[0])
    tracer = Tracer()
    cfg = PDSLinConfig(k=k, seed=seed, rhs_ordering="hypergraph",
                       block_size=32)
    solver = PDSLin(A, cfg, runtime=RuntimeOptions(tracer=tracer,
                                                   fault_plan=plan))
    result = solver.solve(b)
    bd = result.breakdown()
    rep = result.recovery
    checks = {
        "converged": bool(result.converged),
        "recovered": bool(rep.events),
        "recover_stage": bool(bd.get("Recover", 0.0) > 0.0),
        "counters_match": int(tracer.counters.get("recovery_events", 0))
                          == len(rep.events),
        "degraded_flagged": bool(result.degraded),
    }
    return ChaosRun(tracer=tracer, recovery=rep, breakdown=bd,
                    converged=bool(result.converged),
                    degraded=bool(result.degraded),
                    residual_norm=float(result.residual_norm),
                    checks=checks)


def run_straggler_smoke(*, k: int = 4, seed: int = 0,
                        backend: str = "thread:2",
                        straggle_subdomain: int = 1,
                        straggle_s: float = 0.6,
                        deadline_s: float = 0.3) -> ChaosRun:
    """The deadline/speculation drill: the smoke solve on a parallel
    backend with one subdomain forced to straggle.

    Two mitigated runs execute under the straggler seam — one with a
    per-task ``deadline_s`` (the straggler must time out and fail over
    to the root, degrading the solve honestly) and one with the default
    :class:`repro.parallel.exec.SpeculationPolicy` (duplicates must
    launch) — plus one clean serial reference. Checks:

    - ``converged`` — both mitigated solves converged;
    - ``deadline_fired`` — the deadline run recorded ≥1 timeout and a
      ``deadline-failover`` recovery action;
    - ``deadline_degraded`` — that run is flagged degraded;
    - ``speculation_launched`` — the speculation run launched ≥1
      duplicate task;
    - ``bit_identical`` — both mitigated solves match the clean serial
      reference byte for byte (mitigation never changes the answer).
    """
    from repro.matrices import generate
    from repro.obs.smoke import SMOKE_MATRIX, SMOKE_SCALE
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions
    from repro.solver.partasks import ENV_STRAGGLE_S, ENV_STRAGGLE_SUBDOMAIN

    gm = generate(SMOKE_MATRIX, SMOKE_SCALE)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.shape[0])
    cfg = dict(k=k, seed=seed, rhs_ordering="hypergraph", block_size=32)
    ref = PDSLin(A, PDSLinConfig(**cfg),
                 runtime=RuntimeOptions(backend="serial")).solve(b)

    saved = {name: os.environ.get(name)
             for name in (ENV_STRAGGLE_SUBDOMAIN, ENV_STRAGGLE_S)}
    os.environ[ENV_STRAGGLE_SUBDOMAIN] = str(straggle_subdomain)
    os.environ[ENV_STRAGGLE_S] = str(straggle_s)
    try:
        t_dead = Tracer()
        r_dead = PDSLin(A, PDSLinConfig(**cfg), runtime=RuntimeOptions(
            backend=backend, task_deadline_s=deadline_s,
            tracer=t_dead)).solve(b)
        t_spec = Tracer()
        r_spec = PDSLin(A, PDSLinConfig(**cfg), runtime=RuntimeOptions(
            backend=backend, speculation=True, tracer=t_spec)).solve(b)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    actions = {e.action for e in r_dead.recovery.events}
    checks = {
        "converged": bool(r_dead.converged and r_spec.converged),
        "deadline_fired": t_dead.counters.get("deadline_timeouts", 0) >= 1
                          and "deadline-failover" in actions,
        "deadline_degraded": bool(r_dead.degraded),
        "speculation_launched": t_spec.counters.get(
            "speculation_launched", 0) >= 1,
        "bit_identical": ref.x.tobytes() == r_dead.x.tobytes()
                         and ref.x.tobytes() == r_spec.x.tobytes(),
    }
    return ChaosRun(tracer=t_dead, recovery=r_dead.recovery,
                    breakdown=r_dead.breakdown(),
                    converged=bool(r_dead.converged),
                    degraded=bool(r_dead.degraded),
                    residual_norm=float(r_dead.residual_norm),
                    checks=checks)


def run_bitflip_smoke(*, k: int = 4, seed: int = 0,
                      targets: tuple[str, ...] = ("lu", "schur", "krylov",
                                                  "transport"),
                      backends: tuple[str, ...] = ("serial", "process:2"),
                      ) -> ChaosRun:
    """The silent-data-corruption drill: seeded bit flips at every
    injection site, on every backend, with and without ABFT.

    For each ``target x backend`` pair two legs run against one
    fault-free reference solve:

    - *defended* (``abft="detect+recover"``): the flip must be detected
      (``sdc-detected`` event, ``sdc_detected`` counter) and repaired
      per the ladder (``sdc-recovered``, never ``sdc-unrecoverable``),
      the solve must converge non-degraded, and the answer must meet
      the same certified-accuracy bar as the reference —
      byte-identical for ``lu``/``schur``/``transport`` (recovery
      reconstructs the exact corrupted object), within certification
      tolerance for ``krylov`` (a warm restart is a different, equally
      certified iterate);
    - *undefended* (``abft="off"``, and for ``transport`` also
      ``REPRO_TRANSPORT_CHECKSUM=0``): the same flip must change the
      answer bytes while the run reports *zero* SDC events or counters
      — the corruption is real, and silent without the checksums.

    ``condest`` is disabled in the drill config: the condition-driven
    Schur rebuild would otherwise reassemble S after the injection
    point and silently heal the ``schur`` flip in both legs.

    One check per leg lands in ``ChaosRun.checks`` under
    ``{target}/{backend}/defended`` and ``{target}/{backend}/silent``.
    """
    from repro.matrices import generate
    from repro.obs.smoke import SMOKE_MATRIX, SMOKE_SCALE
    from repro.parallel.exec import ENV_TRANSPORT_CHECKSUM
    from repro.resilience import abft
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    gm = generate(SMOKE_MATRIX, SMOKE_SCALE)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.shape[0])
    cfg = dict(k=k, seed=seed, rhs_ordering="hypergraph", block_size=32,
               condest=False)

    seam_vars = (abft.ENV_BITFLIP_TARGET, abft.ENV_BITFLIP_SEED,
                 abft.ENV_BITFLIP_SUBDOMAIN, abft.ENV_BITFLIP_COUNT,
                 ENV_TRANSPORT_CHECKSUM)
    saved = {name: os.environ.get(name) for name in seam_vars}

    def leg(mode: str, backend: str, env: dict[str, str]):
        # the seam reaches pool workers through the environment they
        # inherit at fork, so arm it before the solver (and its
        # backend) exists, and re-arm the one-shot injector state
        for name in seam_vars:
            os.environ.pop(name, None)
        os.environ.update(env)
        abft.reset_bitflip_state()
        tracer = Tracer()
        solver = PDSLin(A, PDSLinConfig(abft=mode, **cfg),
                        runtime=RuntimeOptions(tracer=tracer,
                                               backend=backend))
        try:
            result = solver.solve(b)
        finally:
            if hasattr(solver.backend, "close"):
                solver.backend.close()
        return result, tracer

    checks: dict[str, bool] = {}
    try:
        ref, _ = leg("detect+recover", "serial", {})
        last = None
        for target in targets:
            for backend in backends:
                env = {abft.ENV_BITFLIP_TARGET: target,
                       abft.ENV_BITFLIP_SEED: "7",
                       abft.ENV_BITFLIP_SUBDOMAIN: "1"}
                res, tr = leg("detect+recover", backend, env)
                last = (res, tr)
                actions = [e.action for e in res.recovery.events]
                exact = target != "krylov"
                checks[f"{target}/{backend}/defended"] = bool(
                    res.converged and res.certified and not res.degraded
                    and tr.counters.get("sdc_detected", 0) >= 1
                    and tr.counters.get("sdc_recovered", 0) >= 1
                    and "sdc-detected" in actions
                    and "sdc-recovered" in actions
                    and "sdc-unrecoverable" not in actions
                    and (np.array_equal(res.x, ref.x) if exact
                         else np.allclose(res.x, ref.x,
                                          rtol=1e-8, atol=1e-10)))

                # seed 2 for transport: the victim array is drawn from
                # the seed, and some draws land on shipped metadata
                # (e.g. the checksum vector itself) that never feeds x
                env = {abft.ENV_BITFLIP_TARGET: target,
                       abft.ENV_BITFLIP_SEED: "2" if target == "transport"
                                              else "8",
                       abft.ENV_BITFLIP_SUBDOMAIN: "1"}
                if target == "transport":
                    env[ENV_TRANSPORT_CHECKSUM] = "0"
                res, tr = leg("off", backend, env)
                silent = bool(
                    tr.counters.get("sdc_checks", 0) == 0
                    and tr.counters.get("sdc_detected", 0) == 0
                    and tr.counters.get("sdc_recovered", 0) == 0
                    and not any(e.action.startswith("sdc-")
                                for e in res.recovery.events))
                wrong = res.x.tobytes() != ref.x.tobytes()
                checks[f"{target}/{backend}/silent"] = silent and wrong
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        abft.reset_bitflip_state()

    res, tr = last if last is not None else (ref, Tracer())
    return ChaosRun(tracer=tr, recovery=res.recovery,
                    breakdown=res.breakdown(),
                    converged=bool(res.converged),
                    degraded=bool(res.degraded),
                    residual_norm=float(res.residual_norm),
                    checks=checks)


def main(argv: list[str] | None = None) -> int:
    """CLI: run the chaos smoke and exit non-zero on any failed check."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--scenario", default="faults",
                    choices=("faults", "stragglers", "bitflip"),
                    help="faults: injected-fault recovery drill; "
                         "stragglers: deadline/speculation drill; "
                         "bitflip: silent-data-corruption/ABFT drill")
    args = ap.parse_args(argv)
    if args.scenario == "stragglers":
        run = run_straggler_smoke(k=args.k, seed=args.seed)
    elif args.scenario == "bitflip":
        run = run_bitflip_smoke(k=args.k, seed=args.seed)
    else:
        run = run_chaos_smoke(k=args.k, seed=args.seed)
    print(run.recovery.summary())
    for stage, t in sorted(run.breakdown.items()):
        print(f"  {stage:<12} {t * 1e3:8.2f} ms")
    for name, passed in run.checks.items():
        print(f"check {name:<16} {'PASS' if passed else 'FAIL'}")
    print(f"converged={run.converged} degraded={run.degraded} "
          f"residual={run.residual_norm:.2e}")
    return 0 if run.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
