"""The chaos-smoke scenario: the smoke solve under a seeded FaultPlan.

This is the resilience counterpart of :mod:`repro.obs.smoke` and what
the CI ``chaos-smoke`` job runs: the tiny Table-I matrix through the
full PDSLin pipeline while a standard fault plan injects one
*permanent* subdomain-LU fault (forcing failover to root) and one
*transient* Schur-factorization fault (forcing a retry). The run must
still converge, report a non-empty :class:`RecoveryReport`, show a
``Recover`` stage in the machine breakdown, and the tracer's recovery
counters must match the report — otherwise the process exits non-zero.

Run directly::

    PYTHONPATH=src python -m repro.resilience.chaos --seed 0 --k 4
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import Tracer
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.report import RecoveryReport

__all__ = ["ChaosRun", "standard_fault_plan", "run_chaos_smoke"]


def standard_fault_plan(*, k: int = 4, seed: int = 0,
                        process: int | None = None) -> FaultPlan:
    """The canonical CI fault plan: one permanent ``LU(D)`` fault on one
    subdomain process plus one transient ``LU(S)`` fault on root.

    The victim process is drawn deterministically from ``seed`` (or
    forced with ``process``), so the same seed always injures the same
    subdomain.
    """
    if process is None:
        process = int(np.random.default_rng(seed).integers(0, k))
    return FaultPlan([
        FaultSpec(stage="LU(D)", process=process, kind="permanent"),
        FaultSpec(stage="LU(S)", process=None, kind="transient"),
    ], seed=seed)


@dataclass
class ChaosRun:
    """A completed chaos solve with everything the checks need."""

    tracer: Tracer
    recovery: RecoveryReport
    breakdown: dict
    converged: bool
    degraded: bool
    residual_norm: float
    checks: dict[str, bool]

    @property
    def ok(self) -> bool:
        """True when the solve converged *and* every check passed."""
        return bool(self.converged and all(self.checks.values()))


def run_chaos_smoke(*, k: int = 4, seed: int = 0,
                    plan: FaultPlan | None = None) -> ChaosRun:
    """Run the smoke problem under the standard fault plan and verify
    the acceptance conditions.

    Checks recorded in ``ChaosRun.checks``:

    - ``converged`` — the injected faults did not break the solve;
    - ``recovered`` — the recovery report is non-empty;
    - ``recover_stage`` — recovery time shows up as a ``Recover`` stage
      in the simulated-machine breakdown;
    - ``counters_match`` — the tracer's ``recovery_events`` counter
      equals the number of reported events;
    - ``degraded_flagged`` — the permanent fault flipped the degraded
      flag instead of the result claiming full health.
    """
    # imported here so `repro.resilience` stays importable without the
    # solver stack (repro.lu imports our error types at module level)
    from repro.matrices import generate
    from repro.obs.smoke import SMOKE_MATRIX, SMOKE_SCALE
    from repro.solver import PDSLin, PDSLinConfig

    if plan is None:
        plan = standard_fault_plan(k=k, seed=seed)
    gm = generate(SMOKE_MATRIX, SMOKE_SCALE)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.shape[0])
    tracer = Tracer()
    cfg = PDSLinConfig(k=k, seed=seed, rhs_ordering="hypergraph",
                       block_size=32)
    solver = PDSLin(A, cfg, tracer=tracer, fault_plan=plan)
    result = solver.solve(b)
    bd = result.breakdown()
    rep = result.recovery
    checks = {
        "converged": bool(result.converged),
        "recovered": bool(rep.events),
        "recover_stage": bool(bd.get("Recover", 0.0) > 0.0),
        "counters_match": int(tracer.counters.get("recovery_events", 0))
                          == len(rep.events),
        "degraded_flagged": bool(result.degraded),
    }
    return ChaosRun(tracer=tracer, recovery=rep, breakdown=bd,
                    converged=bool(result.converged),
                    degraded=bool(result.degraded),
                    residual_norm=float(result.residual_norm),
                    checks=checks)


def main(argv: list[str] | None = None) -> int:
    """CLI: run the chaos smoke and exit non-zero on any failed check."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--k", type=int, default=4)
    args = ap.parse_args(argv)
    run = run_chaos_smoke(k=args.k, seed=args.seed)
    print(run.recovery.summary())
    for stage, t in sorted(run.breakdown.items()):
        print(f"  {stage:<12} {t * 1e3:8.2f} ms")
    for name, passed in run.checks.items():
        print(f"check {name:<16} {'PASS' if passed else 'FAIL'}")
    print(f"converged={run.converged} degraded={run.degraded} "
          f"residual={run.residual_norm:.2e}")
    return 0 if run.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
