"""Resilience subsystem: fault injection, breakdown recovery, degraded-
mode reporting.

PDSLin's value proposition is surviving hard problems at scale, so the
pipeline must *recover* rather than abort:

- :mod:`repro.resilience.errors` — the structured error hierarchy
  (:class:`SolverError` and friends) carrying stage/subdomain context;
- :mod:`repro.resilience.faults` — seeded, deterministic fault
  injection for the simulated machine (:class:`FaultPlan`);
- :mod:`repro.resilience.retry` — the generic :class:`RetryPolicy`;
- :mod:`repro.resilience.report` — :class:`RecoveryReport`, the
  degraded-mode accounting attached to every solve result;
- :mod:`repro.resilience.recovery` — numerical ladders
  (:func:`factorize_resilient`: threshold -> full -> static pivoting);
- :mod:`repro.resilience.abft` — algorithm-based fault tolerance:
  checksummed LU factors and Schur updates, Krylov drift audits, and
  the seeded ``REPRO_CHAOS_BITFLIP_*`` bit-flip injector;
- :mod:`repro.resilience.checkpoint` — integrity-checked on-disk
  snapshots (:class:`CheckpointManager`) for kill-and-resume solves;
- :mod:`repro.resilience.chaos` — the seeded chaos-smoke scenario run
  by CI (imported explicitly; it pulls in the solver stack);
- :mod:`repro.resilience.restart_smoke` — the kill-and-resume smoke
  CLI (imported explicitly; it pulls in the solver stack).
"""

from repro.resilience.abft import (
    ABFT_MODES,
    AuditResult,
    FactorChecksums,
    attach_factor_checksums,
    bitflip_seam,
    checksum_matrix,
    maybe_bitflip,
    reset_bitflip_state,
    verify_factors,
    verify_matrix_checksum,
)
from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    CheckpointState,
    load_checkpoint,
    truncate_checkpoint,
)
from repro.resilience.errors import (
    CheckpointError,
    InjectedFault,
    KrylovBreakdownError,
    RefinementStallError,
    SchurFactorizationError,
    SdcDetectedError,
    SingularSubdomainError,
    SolverError,
    TaskDeadlineError,
    TransportChecksumError,
    WorkerCrashError,
)
from repro.resilience.faults import FaultPlan, FaultSpec, FiredFault
from repro.resilience.recovery import factorize_resilient
from repro.resilience.report import (
    DEGRADING_ACTIONS,
    RecoveryEvent,
    RecoveryReport,
    emit_recovery,
)
from repro.resilience.retry import RetryPolicy, run_with_retry

__all__ = [
    "SolverError", "SingularSubdomainError", "SchurFactorizationError",
    "KrylovBreakdownError", "RefinementStallError", "InjectedFault",
    "WorkerCrashError", "TaskDeadlineError", "CheckpointError",
    "SdcDetectedError", "TransportChecksumError",
    "FaultSpec", "FaultPlan", "FiredFault",
    "RetryPolicy", "run_with_retry",
    "RecoveryEvent", "RecoveryReport", "DEGRADING_ACTIONS", "emit_recovery",
    "factorize_resilient",
    "ABFT_MODES", "AuditResult", "FactorChecksums",
    "attach_factor_checksums", "verify_factors", "checksum_matrix",
    "verify_matrix_checksum", "bitflip_seam", "maybe_bitflip",
    "reset_bitflip_state",
    "CheckpointManager", "CheckpointPolicy", "CheckpointState",
    "load_checkpoint", "truncate_checkpoint",
]
