"""Structured error hierarchy for the PDSLin pipeline.

Every failure mode the recovery ladder knows how to handle is a
:class:`SolverError` subclass carrying pipeline context (stage name,
subdomain index) so that recovery code — and the user, when recovery is
exhausted — sees *where* the pipeline broke, not just a bare message.

``SolverError`` subclasses :class:`RuntimeError` so that pre-existing
callers catching ``RuntimeError`` around factorizations keep working.

Errors must survive a trip through the process-parallel execution
backend (:mod:`repro.parallel.exec`): default ``BaseException`` pickling
only keeps ``self.args``, losing the keyword-only context every subclass
carries, so ``SolverError.__reduce__`` rebuilds instances from
``(class, args, __dict__)`` — stage, subdomain, column, pivot and every
other structured attribute round-trip intact.
"""

from __future__ import annotations

__all__ = [
    "SolverError",
    "SingularSubdomainError",
    "SchurFactorizationError",
    "KrylovBreakdownError",
    "RefinementStallError",
    "InjectedFault",
    "WorkerCrashError",
    "TaskDeadlineError",
    "CheckpointError",
    "SdcDetectedError",
    "TransportChecksumError",
]


def _rebuild_solver_error(cls, args, state):
    """Unpickle helper: restore without re-running ``__init__`` (whose
    keyword-only signatures vary by subclass)."""
    err = cls.__new__(cls)
    RuntimeError.__init__(err, *args)
    err.__dict__.update(state)
    return err


class SolverError(RuntimeError):
    """Base class for structured solver failures.

    Carries the pipeline ``stage`` (``"LU(D)"``, ``"Comp(S)"``,
    ``"LU(S)"``, ``"Solve"``, ...) and, for per-subdomain work, the
    ``subdomain`` index the failure occurred on.
    """

    def __init__(self, message: str, *, stage: str | None = None,
                 subdomain: int | None = None):
        super().__init__(message)
        self.stage = stage
        self.subdomain = subdomain

    def __reduce__(self):
        return (_rebuild_solver_error,
                (type(self), self.args, dict(self.__dict__)))

    def context(self) -> str:
        """Human-readable ``stage=... subdomain=...`` fragment."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.subdomain is not None:
            parts.append(f"subdomain={self.subdomain}")
        return " ".join(parts)

    def __str__(self) -> str:
        base = super().__str__()
        ctx = self.context()
        return f"{base} [{ctx}]" if ctx else base


class SingularSubdomainError(SolverError):
    """A subdomain (or Schur) LU hit a structurally or numerically
    singular pivot.

    ``column`` is the factorization column that failed and ``pivot``
    the magnitude of the best available pivot there (0.0 when the
    column had no candidate rows at all).
    """

    def __init__(self, message: str, *, column: int | None = None,
                 pivot: float | None = None, stage: str = "LU(D)",
                 subdomain: int | None = None):
        super().__init__(message, stage=stage, subdomain=subdomain)
        self.column = column
        self.pivot = pivot


class SchurFactorizationError(SolverError):
    """Factorization of the approximate Schur complement broke down.

    ``method`` records which factorization was attempted
    (``"lu"`` or ``"ilu"``).
    """

    def __init__(self, message: str, *, method: str = "lu",
                 stage: str = "LU(S)"):
        super().__init__(message, stage=stage)
        self.method = method


class KrylovBreakdownError(SolverError):
    """A Krylov method broke down or failed to converge on the Schur
    system.

    ``method`` is ``"gmres"`` or ``"bicgstab"``; ``iterations`` how far
    it got. Used both as a raised error and as the recorded cause of a
    krylov-fallback recovery event.
    """

    def __init__(self, message: str, *, method: str = "gmres",
                 iterations: int = 0, stage: str = "Solve"):
        super().__init__(message, stage=stage)
        self.method = method
        self.iterations = iterations


class RefinementStallError(SolverError):
    """Post-solve iterative refinement stagnated: corrections stopped
    shrinking the componentwise backward error.

    Raised-or-recorded by the certification pass
    (:mod:`repro.numerics.refine` via the solver): a first stall
    escalates into a preconditioner rebuild; a stall after escalation
    leaves the solve uncertified and is recorded as a degrading
    ``refine-stall`` event. ``berr`` is the backward error refinement
    got stuck at (NaN when recorded before the final value is known).
    """

    def __init__(self, message: str, *, berr: float = float("nan"),
                 stage: str = "Refine"):
        super().__init__(message, stage=stage)
        self.berr = float(berr)


class InjectedFault(SolverError):
    """A fault raised on purpose by a :class:`repro.resilience.FaultPlan`.

    ``kind`` is ``"transient"`` (goes away on retry) or ``"permanent"``
    (every attempt on the same stage/process fails — the work must move
    elsewhere). ``recovery_cost_s`` is the simulated time a recovery
    action for this fault charges to the machine's ``Recover`` stage.
    """

    def __init__(self, message: str, *, kind: str = "transient",
                 stage: str | None = None, subdomain: int | None = None,
                 recovery_cost_s: float = 1e-3):
        super().__init__(message, stage=stage, subdomain=subdomain)
        if kind not in ("transient", "permanent"):
            raise ValueError(f"kind must be 'transient' or 'permanent', "
                             f"got {kind!r}")
        self.kind = kind
        self.recovery_cost_s = float(recovery_cost_s)

    @property
    def permanent(self) -> bool:
        """True when retrying the same stage on the same process is
        guaranteed to fail again."""
        return self.kind == "permanent"


class WorkerCrashError(SolverError):
    """A real worker process died mid-task (segfault, kill, hard exit).

    Raised by the :class:`repro.parallel.exec.ProcessBackend` when the
    pool reports a broken worker; the solver treats it like a permanent
    process fault — the work fails over to the root process and the
    solve is marked degraded. ``backend`` names the executor that
    observed the crash.
    """

    def __init__(self, message: str, *, backend: str = "process",
                 stage: str | None = None, subdomain: int | None = None):
        super().__init__(message, stage=stage, subdomain=subdomain)
        self.backend = backend


class TaskDeadlineError(SolverError):
    """A shipped task blew its per-``map`` deadline and was cancelled.

    Surfaces as ``TaskOutcome.error`` (with ``TaskOutcome.timed_out``
    set) rather than being raised: the solver treats a timed-out
    subdomain like a crashed worker and fails the work over to the root
    process. ``deadline_s`` is the budget that was exceeded.
    """

    def __init__(self, message: str, *, deadline_s: float = 0.0,
                 stage: str | None = None, subdomain: int | None = None):
        super().__init__(message, stage=stage, subdomain=subdomain)
        self.deadline_s = float(deadline_s)


class CheckpointError(SolverError):
    """A checkpoint could not be written, read, or trusted.

    Raised on a missing/truncated manifest, a shard whose blake2b
    digest no longer matches the manifest entry (bit rot, torn write,
    tampering), a version the reader does not understand, or an
    identity mismatch (the checkpoint belongs to a different matrix or
    solver configuration). ``path`` names the offending file when one
    is known.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 stage: str = "Checkpoint"):
        super().__init__(message, stage=stage)
        self.path = path


class SdcDetectedError(SolverError):
    """An ABFT checksum caught silent data corruption.

    ``site`` names the detector that fired (``"lu"``, ``"comp"``,
    ``"schur"``, ``"krylov"``, ``"solve"``) and ``rel`` the relative
    checksum discrepancy normalized to the detector's tolerance
    (``rel > 1`` means violated). Raised only when recovery is
    exhausted or disabled; otherwise recorded as the cause of
    ``sdc-detected`` recovery events.
    """

    def __init__(self, message: str, *, site: str = "lu",
                 rel: float = float("nan"), stage: str | None = None,
                 subdomain: int | None = None):
        super().__init__(message, stage=stage, subdomain=subdomain)
        self.site = site
        self.rel = float(rel)


class TransportChecksumError(SolverError):
    """A task result's blake2b transport digest did not match its
    payload — the bytes that arrived are not the bytes the worker
    hashed (IPC/pickle-level corruption).

    Surfaces as ``TaskOutcome.error`` after the executor's single
    resubmission also fails; the solver treats it like a crashed
    worker and fails the task over to the root process.
    """

    def __init__(self, message: str, *, backend: str = "process",
                 stage: str | None = None, subdomain: int | None = None):
        super().__init__(message, stage=stage, subdomain=subdomain)
        self.backend = backend
