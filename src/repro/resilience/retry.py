"""Generic retry policy and helper.

The recovery ladder in :class:`repro.solver.PDSLin` and the chaos tests
share one notion of "how hard to try": a :class:`RetryPolicy` bounds the
attempts per unit of work and names the escalation rungs taken when
plain retries are exhausted (e.g. threshold pivoting -> full pivoting ->
static pivot perturbation for a singular subdomain LU).

Retries against *external* contention (a wedged worker pool, a file
lock, a transient resource) should not hammer in lockstep, so the
policy carries an optional exponential backoff with *seeded* jitter:
``backoff_s(attempt)`` is a pure function of ``(seed, attempt)`` —
deterministic for reproducibility, decorrelated across solvers with
different seeds. The default (``backoff_base_s=0``) sleeps not at all,
preserving the historical behavior of the simulated-fault ladder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple, TypeVar

import numpy as np

__all__ = ["RetryPolicy", "run_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and escalation steps for one recovery ladder.

    ``max_attempts`` counts the *total* tries of the primary action
    (first attempt included); once exhausted, recovery escalates through
    ``escalation`` (informational rung names, outermost first) or fails.

    Backoff: before re-attempt ``n`` (n >= 2), sleep
    ``min(backoff_base_s * backoff_factor**(n-2), backoff_max_s)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - backoff_jitter, 1]`` with a generator seeded by
    ``(seed, n)`` — same policy, same attempt, same sleep, always.
    ``backoff_base_s = 0`` (the default) disables sleeping entirely.
    """

    max_attempts: int = 3
    escalation: Tuple[str, ...] = ()
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < 0.0:
            raise ValueError("backoff_max_s must be >= 0")
        if not (0.0 <= self.backoff_jitter <= 1.0):
            raise ValueError("backoff_jitter must be in [0, 1]")

    def attempts(self) -> Iterator[int]:
        """Iterate attempt numbers ``1..max_attempts``."""
        return iter(range(1, self.max_attempts + 1))

    def backoff_s(self, attempt: int) -> float:
        """Seconds to sleep before re-attempt ``attempt`` (>= 2).

        Deterministic in ``(seed, attempt)``; 0.0 when backoff is
        disabled or for the first attempt.
        """
        if self.backoff_base_s <= 0.0 or attempt < 2:
            return 0.0
        base = min(self.backoff_base_s
                   * self.backoff_factor ** (attempt - 2),
                   self.backoff_max_s)
        if self.backoff_jitter == 0.0:
            return base
        rng = np.random.default_rng((int(self.seed), int(attempt)))
        return base * (1.0 - self.backoff_jitter * rng.random())


def run_with_retry(fn: Callable[[int], T], *,
                   policy: RetryPolicy | None = None,
                   retry_on: tuple[type[BaseException], ...] = (RuntimeError,),
                   on_retry: Callable[[int, BaseException], None] | None = None,
                   sleep: Callable[[float], None] = time.sleep,
                   ) -> Tuple[T, int]:
    """Call ``fn(attempt)`` until it succeeds or attempts run out.

    Returns ``(result, attempts_used)``. Exceptions not in ``retry_on``
    propagate immediately; the last retryable exception propagates once
    ``policy.max_attempts`` is exhausted. ``on_retry(attempt, exc)``
    runs before each re-attempt (charge simulated recovery time, log an
    event, ...), then the policy's (possibly zero) backoff is slept via
    ``sleep`` — injectable for tests.
    """
    policy = policy or RetryPolicy()
    for attempt in policy.attempts():
        try:
            return fn(attempt), attempt
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            pause = policy.backoff_s(attempt + 1)
            if pause > 0.0:
                sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover
