"""Generic retry policy and helper.

The recovery ladder in :class:`repro.solver.PDSLin` and the chaos tests
share one notion of "how hard to try": a :class:`RetryPolicy` bounds the
attempts per unit of work and names the escalation rungs taken when
plain retries are exhausted (e.g. threshold pivoting -> full pivoting ->
static pivot perturbation for a singular subdomain LU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Tuple, TypeVar

__all__ = ["RetryPolicy", "run_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and escalation steps for one recovery ladder.

    ``max_attempts`` counts the *total* tries of the primary action
    (first attempt included); once exhausted, recovery escalates through
    ``escalation`` (informational rung names, outermost first) or fails.
    """

    max_attempts: int = 3
    escalation: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def attempts(self) -> Iterator[int]:
        """Iterate attempt numbers ``1..max_attempts``."""
        return iter(range(1, self.max_attempts + 1))


def run_with_retry(fn: Callable[[int], T], *,
                   policy: RetryPolicy | None = None,
                   retry_on: tuple[type[BaseException], ...] = (RuntimeError,),
                   on_retry: Callable[[int, BaseException], None] | None = None,
                   ) -> Tuple[T, int]:
    """Call ``fn(attempt)`` until it succeeds or attempts run out.

    Returns ``(result, attempts_used)``. Exceptions not in ``retry_on``
    propagate immediately; the last retryable exception propagates once
    ``policy.max_attempts`` is exhausted. ``on_retry(attempt, exc)``
    runs before each re-attempt (charge simulated recovery time, log an
    event, ...).
    """
    policy = policy or RetryPolicy()
    for attempt in policy.attempts():
        try:
            return fn(attempt), attempt
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
    raise AssertionError("unreachable")  # pragma: no cover
