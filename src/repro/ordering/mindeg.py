"""Minimum-degree fill-reducing ordering (quotient-graph formulation).

The paper's triangular-solve experiments order each subdomain with a
minimum degree ordering ("a very common setting in direct and hybrid
linear solvers", Section V-B). This implementation follows the
quotient-graph / element model used by AMD:

- eliminating variable ``v`` creates an *element* whose variable set is
  v's current neighbourhood;
- elements adjacent to ``v`` are absorbed into the new element;
- variable degrees are maintained approximately (Amestoy-Davis-Duff
  style upper bound: explicit neighbours plus the sum of element sizes),
  with a lazy min-heap.

Ties break on the lowest variable index, so the ordering is
deterministic.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import check_csr, check_square

__all__ = ["minimum_degree", "permute_symmetric"]


def minimum_degree(A: sp.spmatrix) -> np.ndarray:
    """Return an elimination order (permutation) by approximate minimum
    degree on the pattern of ``|A|+|A|^T``.

    ``order[t]`` is the variable eliminated at step t; to apply it,
    permute the matrix with :func:`permute_symmetric`.
    """
    A = check_csr(A)
    check_square(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    n = A.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    var_adj: list[set[int]] = [
        set(indices[indptr[i]:indptr[i + 1]].tolist()) - {i} for i in range(n)
    ]
    var_elems: list[set[int]] = [set() for _ in range(n)]
    elem_vars: dict[int, set[int]] = {}
    eliminated = np.zeros(n, dtype=bool)
    degree = np.array([len(a) for a in var_adj], dtype=np.int64)
    heap: list[tuple[int, int]] = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    stamp = np.zeros(n, dtype=np.int64)  # lazy-deletion version counters
    order = np.empty(n, dtype=np.int64)

    for step in range(n):
        # pop until a live, up-to-date entry appears
        while True:
            d, v = heapq.heappop(heap)
            if not eliminated[v] and d == degree[v]:
                break
        order[step] = v
        eliminated[v] = True

        # Le = neighbourhood of v in the quotient graph = new element
        elems_v = list(var_elems[v])
        le: set[int] = set(var_adj[v])
        for e in elems_v:
            le |= elem_vars[e]
        le.discard(v)
        le = {u for u in le if not eliminated[u]}

        # absorb adjacent elements
        for e in elems_v:
            for u in elem_vars[e]:
                var_elems[u].discard(e)
            del elem_vars[e]
        var_elems[v].clear()
        var_adj[v].clear()

        if not le:
            continue
        eid = v  # reuse the variable index as the element id
        elem_vars[eid] = le
        for u in le:
            # edges inside the element are now represented by it
            var_adj[u] -= le
            var_adj[u].discard(v)
            var_elems[u].add(eid)
            # approximate external degree
            d_u = len(var_adj[u])
            for e in var_elems[u]:
                d_u += len(elem_vars[e]) - 1
            d_u = min(d_u, n - step - 1)
            if d_u != degree[u]:
                degree[u] = d_u
                stamp[u] += 1
                heapq.heappush(heap, (d_u, u))
            elif stamp[u] == 0:
                pass  # initial entry still valid
    return order


def permute_symmetric(A: sp.spmatrix, order: np.ndarray) -> sp.csr_matrix:
    """Symmetric permutation ``A[order][:, order]`` in canonical CSR."""
    A = check_csr(A)
    check_square(A)
    P = A[order][:, order].tocsr()
    P.sum_duplicates()
    P.sort_indices()
    return P
