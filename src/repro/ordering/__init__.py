"""Fill-reducing orderings and elimination-tree machinery."""

from repro.ordering.etree import (
    elimination_tree,
    postorder,
    is_postordered,
    children_lists,
    tree_level,
    first_descendants,
    etree_path_closure,
    symbolic_cholesky_row_counts,
)
from repro.ordering.mindeg import minimum_degree, permute_symmetric
from repro.ordering.nd_order import nested_dissection_ordering
from repro.ordering.rcm import (
    reverse_cuthill_mckee,
    pseudo_peripheral_vertex,
    bandwidth,
    envelope_size,
)

__all__ = [
    "elimination_tree", "postorder", "is_postordered", "children_lists",
    "tree_level", "first_descendants", "etree_path_closure",
    "symbolic_cholesky_row_counts",
    "minimum_degree", "permute_symmetric", "nested_dissection_ordering",
    "reverse_cuthill_mckee", "pseudo_peripheral_vertex", "bandwidth",
    "envelope_size",
]
