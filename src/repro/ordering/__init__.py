"""Fill-reducing orderings and elimination-tree machinery."""

from repro.ordering.etree import (
    children_lists,
    elimination_tree,
    etree_path_closure,
    first_descendants,
    is_postordered,
    postorder,
    symbolic_cholesky_row_counts,
    tree_level,
)
from repro.ordering.mindeg import minimum_degree, permute_symmetric
from repro.ordering.nd_order import nested_dissection_ordering
from repro.ordering.rcm import (
    bandwidth,
    envelope_size,
    pseudo_peripheral_vertex,
    reverse_cuthill_mckee,
)

__all__ = [
    "elimination_tree", "postorder", "is_postordered", "children_lists",
    "tree_level", "first_descendants", "etree_path_closure",
    "symbolic_cholesky_row_counts",
    "minimum_degree", "permute_symmetric", "nested_dissection_ordering",
    "reverse_cuthill_mckee", "pseudo_peripheral_vertex", "bandwidth",
    "envelope_size",
]
