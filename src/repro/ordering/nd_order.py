"""Nested-dissection fill-reducing ordering.

George's ordering built from the library's own multilevel bisection +
König separators (:mod:`repro.graphs`): recursively bisect, order the
two halves first and the separator last, and switch to minimum degree on
small leaves. Asymptotically optimal fill on planar/grid-like problems
(O(n log n) factor nonzeros on 2-D grids vs O(n^1.2+) for MD), so it is
the natural alternative to :func:`repro.ordering.minimum_degree` for
subdomain factorizations — ablated in the kernel benchmarks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.bisect import bisect_graph
from repro.graphs.graph import Graph
from repro.graphs.separator import vertex_separator_from_cut
from repro.ordering.mindeg import minimum_degree
from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import (
    SeedLike,
    check_csr,
    check_square,
    positive_int,
    rng_from,
)

__all__ = ["nested_dissection_ordering"]


def nested_dissection_ordering(A: sp.spmatrix, *, leaf_size: int = 64,
                               seed: SeedLike = 0,
                               n_trials: int = 2) -> np.ndarray:
    """Fill-reducing permutation by recursive vertex-separator
    dissection; ``order[t]`` is the variable eliminated at step t.

    Leaves of at most ``leaf_size`` vertices are ordered with minimum
    degree (the standard hybrid used by real ND codes).
    """
    A = check_csr(A)
    check_square(A)
    leaf_size = positive_int(leaf_size, "leaf_size")
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    rng = rng_from(seed)
    n = A.shape[0]
    order = np.empty(n, dtype=np.int64)
    cursor = [0]

    def emit(ids: np.ndarray) -> None:
        order[cursor[0]:cursor[0] + ids.size] = ids
        cursor[0] += ids.size

    def recurse(g: Graph, ids: np.ndarray) -> None:
        if g.n_vertices <= leaf_size:
            sub = g.to_matrix().tocsr()
            local = minimum_degree(sub + sp.eye(g.n_vertices, format="csr"))
            emit(ids[local])
            return
        res = bisect_graph(g, epsilon=0.15, seed=rng, n_trials=n_trials)
        vs = vertex_separator_from_cut(g, res.side)
        if vs.side0.size == 0 or vs.side1.size == 0:
            # bisection degenerated; fall back to MD on the whole block
            sub = g.to_matrix().tocsr()
            local = minimum_degree(sub + sp.eye(g.n_vertices, format="csr"))
            emit(ids[local])
            return
        g0, l0 = g.subgraph(vs.side0)
        g1, l1 = g.subgraph(vs.side1)
        recurse(g0, ids[l0])
        recurse(g1, ids[l1])
        emit(ids[vs.separator])  # separator eliminated last

    recurse(Graph.from_matrix(A), np.arange(n, dtype=np.int64))
    if cursor[0] != n:
        raise AssertionError("dissection ordering did not cover all vertices")
    return order
