"""Elimination trees and related symbolic machinery (Liu 1990).

The elimination tree (e-tree) of a symmetric-pattern matrix drives both
the fill prediction used by the symbolic triangular solve (paper Section
IV-A: fill of ``D^{-1} b`` follows fill paths to the root) and the
postorder RHS reordering heuristic.

All functions operate on the pattern only; unsymmetric inputs must be
symmetrized by the caller (:func:`repro.sparse.symmetrized`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils import as_int_array, check_csr, check_square

__all__ = [
    "elimination_tree",
    "postorder",
    "is_postordered",
    "children_lists",
    "tree_level",
    "first_descendants",
    "etree_path_closure",
    "symbolic_cholesky_row_counts",
]


def elimination_tree(A: sp.spmatrix) -> np.ndarray:
    """Parent array of the elimination tree of symmetric-pattern ``A``.

    ``parent[j] == -1`` marks a root. Uses Liu's algorithm with path
    compression, O(nnz * alpha).
    """
    A = check_csr(A)
    check_square(A)
    n = A.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i >= j:
                continue
            # walk from i to the root of its current subtree, compressing
            r = i
            while True:
                a = ancestor[r]
                if a == -1 or a == j:
                    break
                ancestor[r] = j
                r = a
            if ancestor[r] == -1:
                ancestor[r] = j
                parent[r] = j
    return parent


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Children adjacency lists of an e-tree parent array, in index order."""
    parent = as_int_array(parent, "parent")
    n = parent.size
    kids: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        p = parent[v]
        if p >= 0:
            if p == v:
                raise ValueError(f"self-parent at node {v}")
            kids[p].append(v)
    return kids


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postorder permutation of the e-tree.

    Returns ``order`` such that ``order[t]`` is the original index of the
    t-th node in postorder: every subtree occupies a contiguous range
    ending at its root. Children are visited in ascending original index
    for determinism.
    """
    parent = as_int_array(parent, "parent")
    n = parent.size
    kids = children_lists(parent)
    roots = [v for v in range(n) if parent[v] < 0]
    order = np.empty(n, dtype=np.int64)
    t = 0
    # iterative DFS; push children reversed so lowest-index child pops first
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order[t] = node
                t += 1
            else:
                stack.append((node, True))
                for c in reversed(kids[node]):
                    stack.append((c, False))
    if t != n:
        raise ValueError("parent array contains a cycle")
    return order


def is_postordered(parent: np.ndarray) -> bool:
    """True iff node indices are already in a valid postorder
    (every node numbered after all of its descendants, subtrees contiguous)."""
    parent = as_int_array(parent, "parent")
    n = parent.size
    # In a postorder, parent[v] > v for all non-roots, and the descendant
    # range of v is [first_desc[v], v] contiguous.
    if np.any((parent >= 0) & (parent <= np.arange(n))):
        return False
    fd = first_descendants(parent)
    for v in range(n):
        p = parent[v]
        if p >= 0 and fd[p] > fd[v]:
            return False
    return True


def tree_level(parent: np.ndarray) -> np.ndarray:
    """Depth of each node (roots at level 0)."""
    parent = as_int_array(parent, "parent")
    n = parent.size
    level = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        # walk up collecting the path until a known level
        path = []
        u = v
        while u >= 0 and level[u] < 0:
            path.append(u)
            u = parent[u]
        base = level[u] if u >= 0 else -1
        for node in reversed(path):
            base += 1
            level[node] = base
    return level


def first_descendants(parent: np.ndarray) -> np.ndarray:
    """Smallest-index descendant of each node (itself if a leaf).

    Only meaningful as stated when nodes are postordered; for general
    numbering it still returns the minimum index in each subtree.
    """
    parent = as_int_array(parent, "parent")
    n = parent.size
    fd = np.arange(n, dtype=np.int64)
    # process in topological order: children before parents. A node's
    # subtree-min propagates upward; iterate in increasing index and then
    # fix up with a second pass for non-postordered trees.
    changed = True
    while changed:
        changed = False
        for v in range(n):
            p = parent[v]
            if p >= 0 and fd[v] < fd[p]:
                fd[p] = fd[v]
                changed = True
    return fd


def etree_path_closure(parent: np.ndarray, support: np.ndarray,
                       *, stop: np.ndarray | None = None) -> np.ndarray:
    """Union of e-tree paths from each node in ``support`` to its root.

    This is the predicted nonzero row set of ``L^{-1} b`` when
    ``supp(b) = support`` (Gilbert's fill-path theorem specialized to the
    e-tree). ``stop`` optionally marks nodes already known reached; the
    walk stops on hitting one (used for incremental closures).
    Returns the sorted closed set.
    """
    parent = as_int_array(parent, "parent")
    n = parent.size
    mark = np.zeros(n, dtype=bool) if stop is None else stop.copy()
    out = []
    for s in as_int_array(support, "support"):
        v = int(s)
        if v < 0 or v >= n:
            raise IndexError(f"support index {v} out of range [0, {n})")
        while v >= 0 and not mark[v]:
            mark[v] = True
            out.append(v)
            v = parent[v]
    out_arr = np.asarray(sorted(out), dtype=np.int64)
    return out_arr


def symbolic_cholesky_row_counts(A: sp.spmatrix,
                                 parent: np.ndarray | None = None) -> np.ndarray:
    """Per-row nonzero counts of the Cholesky factor of ``str(A)``.

    Row i of L has a nonzero in column j iff j is on the e-tree path
    from some k (with A[i,k] != 0, k < i) up to i. O(|L|) walk with
    per-row marks.
    """
    A = check_csr(A)
    check_square(A)
    n = A.shape[0]
    if parent is None:
        parent = elimination_tree(A)
    parent = as_int_array(parent, "parent")
    counts = np.ones(n, dtype=np.int64)  # diagonal
    mark = np.full(n, -1, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for i in range(n):
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            k = indices[p]
            if k >= i:
                continue
            j = k
            while j != -1 and j < i and mark[j] != i:
                mark[j] = i
                counts[i] += 1
                j = parent[j]
    return counts
