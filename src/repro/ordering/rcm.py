"""Reverse Cuthill-McKee ordering and profile metrics.

Provided as the bandwidth-reducing alternative ordering for subdomain
factorizations and as a baseline in the ordering ablations. Includes a
George-Liu pseudo-peripheral starting-vertex finder.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import check_csr, check_square

__all__ = ["reverse_cuthill_mckee", "pseudo_peripheral_vertex", "bandwidth",
           "envelope_size"]


def _bfs_levels(indptr: np.ndarray, indices: np.ndarray, start: int,
                n: int) -> tuple[np.ndarray, int]:
    """BFS level of every vertex reachable from ``start`` (-1 otherwise)."""
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    frontier = [start]
    depth = 0
    while frontier:
        nxt = []
        for u in frontier:
            for p in range(indptr[u], indptr[u + 1]):
                w = indices[p]
                if level[w] < 0:
                    level[w] = level[u] + 1
                    nxt.append(w)
        if nxt:
            depth += 1
        frontier = nxt
    return level, depth


def pseudo_peripheral_vertex(A: sp.spmatrix, start: int = 0) -> int:
    """George-Liu pseudo-peripheral vertex of the component containing
    ``start``: repeat BFS from a minimum-degree vertex of the last level
    until eccentricity stops growing."""
    A = check_csr(A)
    check_square(A)
    n = A.shape[0]
    if not (0 <= start < n):
        raise IndexError(f"start {start} out of range")
    indptr, indices = A.indptr, A.indices
    deg = np.diff(indptr)
    v = start
    level, depth = _bfs_levels(indptr, indices, v, n)
    while True:
        last = np.flatnonzero(level == depth)
        if last.size == 0:
            return v
        cand = last[np.argmin(deg[last])]
        lvl2, depth2 = _bfs_levels(indptr, indices, int(cand), n)
        if depth2 <= depth:
            return v
        v, level, depth = int(cand), lvl2, depth2


def reverse_cuthill_mckee(A: sp.spmatrix) -> np.ndarray:
    """RCM ordering of ``str(|A|+|A|^T)``; handles disconnected graphs.

    Returns ``order`` with ``order[t]`` = original index of the t-th
    vertex in the new numbering.
    """
    A = check_csr(A)
    check_square(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    n = A.shape[0]
    indptr, indices = A.indptr, A.indices
    deg = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    t = 0
    for comp_seed in range(n):
        if visited[comp_seed]:
            continue
        root = pseudo_peripheral_vertex(A, comp_seed)
        if visited[root]:
            root = comp_seed
        visited[root] = True
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order[t] = u
            t += 1
            nbrs = [w for w in indices[indptr[u]:indptr[u + 1]] if not visited[w]]
            nbrs.sort(key=lambda w: (deg[w], w))
            for w in nbrs:
                visited[w] = True
                queue.append(w)
    if t != n:
        raise AssertionError("RCM did not visit every vertex")
    return order[::-1].copy()


def bandwidth(A: sp.spmatrix) -> int:
    """Maximum |i - j| over stored nonzeros."""
    A = check_csr(A).tocoo()
    if A.nnz == 0:
        return 0
    return int(np.max(np.abs(A.row - A.col)))


def envelope_size(A: sp.spmatrix) -> int:
    """Sum over rows of (i - min column index in row i), the profile of
    the lower triangle. Rows with no entry on or below the diagonal
    contribute nothing."""
    A = check_csr(A)
    n = A.shape[0]
    if A.nnz == 0:
        return 0
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr))
    keep = A.indices <= rows
    cols = A.indices[keep].astype(np.int64, copy=False)
    counts = np.bincount(rows[keep], minlength=n)
    nonempty = counts > 0
    if not nonempty.any():
        return 0
    # rows[keep] is nondecreasing (CSR row order), so reduceat over the
    # per-row segment starts yields each nonempty row's column minimum
    starts = np.concatenate(([0], np.cumsum(counts[nonempty])[:-1]))
    mins = np.minimum.reduceat(cols, starts)
    return int((np.flatnonzero(nonempty) - mins).sum())
