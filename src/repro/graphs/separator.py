"""Vertex separators from edge-cut bisections.

A bisection's cut edges form a bipartite graph between the two boundary
vertex sets; by König's theorem a minimum vertex cover of that bipartite
graph (computed from a maximum matching, Hopcroft-Karp style) is a
smallest vertex set whose removal disconnects the sides. This is the
classical way PT-Scotch/METIS derive nested-dissection separators from
edge cuts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils import as_int_array

__all__ = ["VertexSeparator", "maximum_bipartite_matching", "vertex_separator_from_cut"]


def maximum_bipartite_matching(adj: list[list[int]],
                               n_right: int) -> tuple[np.ndarray, np.ndarray]:
    """Kuhn's augmenting-path maximum matching.

    ``adj[u]`` lists right-vertices adjacent to left-vertex ``u``.
    Returns ``(match_left, match_right)`` with -1 for unmatched.
    """
    n_left = len(adj)
    match_left = np.full(n_left, -1, dtype=np.int64)
    match_right = np.full(n_right, -1, dtype=np.int64)

    def try_augment(u: int, visited: np.ndarray) -> bool:
        for v in adj[u]:
            if visited[v]:
                continue
            visited[v] = True
            if match_right[v] < 0 or try_augment(int(match_right[v]), visited):
                match_left[u] = v
                match_right[v] = u
                return True
        return False

    # greedy warm start speeds up Kuhn significantly
    for u in range(n_left):
        for v in adj[u]:
            if match_right[v] < 0:
                match_left[u] = v
                match_right[v] = u
                break
    for u in range(n_left):
        if match_left[u] < 0:
            visited = np.zeros(n_right, dtype=bool)
            try_augment(u, visited)
    return match_left, match_right


@dataclass(frozen=True)
class VertexSeparator:
    """Separator vertices plus the two remaining halves (original ids)."""

    separator: np.ndarray
    side0: np.ndarray
    side1: np.ndarray

    @property
    def size(self) -> int:
        return int(self.separator.size)


def vertex_separator_from_cut(g: Graph, side: np.ndarray) -> VertexSeparator:
    """Derive a vertex separator from a 0/1 bisection of ``g``.

    König cover over the cut-edge bipartite graph; the cover is the
    separator, removed from both sides. Verifies the separation property
    before returning.
    """
    side = as_int_array(side, "side")
    n = g.n_vertices
    # boundary vertices and cut edges
    left_ids: list[int] = []
    left_index = np.full(n, -1, dtype=np.int64)
    right_ids: list[int] = []
    right_index = np.full(n, -1, dtype=np.int64)
    adj: list[list[int]] = []
    for v in range(n):
        if side[v] != 0:
            continue
        nbrs = [int(u) for u in g.neighbors(v) if side[u] == 1]
        if not nbrs:
            continue
        left_index[v] = len(left_ids)
        left_ids.append(v)
        row = []
        for u in nbrs:
            if right_index[u] < 0:
                right_index[u] = len(right_ids)
                right_ids.append(u)
            row.append(int(right_index[u]))
        adj.append(row)
    n_left, n_right = len(left_ids), len(right_ids)
    if n_left == 0:
        return VertexSeparator(separator=np.empty(0, dtype=np.int64),
                               side0=np.flatnonzero(side == 0),
                               side1=np.flatnonzero(side == 1))
    match_left, match_right = maximum_bipartite_matching(adj, n_right)
    # König: Z = left vertices unmatched or reachable by alternating paths
    in_z_left = np.zeros(n_left, dtype=bool)
    in_z_right = np.zeros(n_right, dtype=bool)
    queue = [u for u in range(n_left) if match_left[u] < 0]
    for u in queue:
        in_z_left[u] = True
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v in adj[u]:
            if in_z_right[v]:
                continue
            in_z_right[v] = True
            w = match_right[v]
            if w >= 0 and not in_z_left[w]:
                in_z_left[w] = True
                queue.append(int(w))
    # cover = (L \ Z) ∪ (R ∩ Z)
    sep_mask = np.zeros(n, dtype=bool)
    for u in range(n_left):
        if not in_z_left[u]:
            sep_mask[left_ids[u]] = True
    for v in range(n_right):
        if in_z_right[v]:
            sep_mask[right_ids[v]] = True
    separator = np.flatnonzero(sep_mask)
    side0 = np.flatnonzero((side == 0) & ~sep_mask)
    side1 = np.flatnonzero((side == 1) & ~sep_mask)
    _check_separation(g, sep_mask, side)
    return VertexSeparator(separator=separator, side0=side0, side1=side1)


def _check_separation(g: Graph, sep_mask: np.ndarray, side: np.ndarray) -> None:
    """Assert no edge connects the two sides once the separator is removed."""
    src = np.repeat(np.arange(g.n_vertices), np.diff(g.indptr))
    dst = g.indices
    live = ~sep_mask[src] & ~sep_mask[dst]
    if np.any(live & (side[src] != side[dst])):
        raise AssertionError("vertex cover failed to separate the bisection")
