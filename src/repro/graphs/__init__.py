"""Graph substrate: CSR graphs, multilevel bisection, vertex separators,
and the nested-graph-dissection (NGD) baseline partitioner."""

from repro.graphs.bisect import (
    BisectionResult,
    bisect_graph,
    greedy_bfs_bisection,
)
from repro.graphs.coarsen import (
    CoarseLevel,
    coarsen,
    contract,
    heavy_edge_matching,
)
from repro.graphs.fm import compute_gains, fm_refine_bisection
from repro.graphs.graph import Graph
from repro.graphs.ngd import SEPARATOR, NGDResult, nested_dissection_partition
from repro.graphs.separator import (
    VertexSeparator,
    maximum_bipartite_matching,
    vertex_separator_from_cut,
)
from repro.graphs.spectral import (
    graph_laplacian,
    lanczos_fiedler,
    spectral_bisection,
)

__all__ = [
    "Graph",
    "CoarseLevel", "heavy_edge_matching", "contract", "coarsen",
    "fm_refine_bisection", "compute_gains",
    "BisectionResult", "bisect_graph", "greedy_bfs_bisection",
    "VertexSeparator", "maximum_bipartite_matching", "vertex_separator_from_cut",
    "NGDResult", "nested_dissection_partition", "SEPARATOR",
    "graph_laplacian", "lanczos_fiedler", "spectral_bisection",
]
