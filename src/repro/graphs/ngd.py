"""Nested graph dissection (NGD) — the paper's baseline partitioner.

Recursively bisects the adjacency graph of ``|A|+|A|^T`` with the
multilevel bisector, converts each edge cut to a vertex separator
(König cover), aggregates all separator vertices into the border set,
and recurses on the two halves until ``k`` parts exist. The subdomain
size balance is enforced *locally at each bisection*, exactly the
behaviour the paper contrasts RHB against: the global imbalance can
grow as more subdomains are extracted, and no nnz/interface constraint
is addressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graphs.bisect import bisect_graph
from repro.graphs.graph import Graph
from repro.graphs.separator import vertex_separator_from_cut
from repro.utils import SeedLike, fraction, positive_int, rng_from

__all__ = ["NGDResult", "nested_dissection_partition"]

SEPARATOR = -1


@dataclass
class NGDResult:
    """Output of nested dissection.

    ``part[v]`` is the subdomain index in [0, k) or ``SEPARATOR`` (-1)
    for separator vertices. ``levels`` records the separator vertex ids
    found at each recursion depth (outermost first).
    """

    part: np.ndarray
    k: int
    levels: list[np.ndarray] = field(default_factory=list)

    @property
    def separator_vertices(self) -> np.ndarray:
        return np.flatnonzero(self.part == SEPARATOR)

    @property
    def separator_size(self) -> int:
        return int(np.count_nonzero(self.part == SEPARATOR))

    def subdomain_vertices(self, ell: int) -> np.ndarray:
        return np.flatnonzero(self.part == ell)

    def subdomain_sizes(self) -> np.ndarray:
        sizes = np.zeros(self.k, dtype=np.int64)
        interior = self.part >= 0
        np.add.at(sizes, self.part[interior], 1)
        return sizes


def nested_dissection_partition(A: sp.spmatrix | Graph, k: int, *,
                                epsilon: float = 0.05,
                                seed: SeedLike = None,
                                n_trials: int = 4,
                                bisector: str = "fm",
                                verify=None) -> NGDResult:
    """Partition the vertices of ``A`` into ``k`` subdomains plus a
    separator by recursive bisection.

    Parameters
    ----------
    A:
        Square sparse matrix (symmetrized internally) or prebuilt Graph.
    k:
        Number of subdomains (any integer >= 1).
    epsilon:
        Allowed imbalance per bisection, Eq. (6) style.
    bisector:
        ``"fm"`` — multilevel FM (the PT-Scotch-like default);
        ``"spectral"`` — Fiedler-vector bisection (only for k a power of
        two; spectral splits are inherently 50/50).
    verify:
        A :class:`repro.verify.Verifier` (or True for the default one)
        checks the result is a complete vertex separator: part ids in
        range and no edge joining two different subdomains.
    """
    k = positive_int(k, "k")
    epsilon = fraction(epsilon, "epsilon")
    if bisector not in ("fm", "spectral"):
        raise ValueError(f"bisector must be 'fm' or 'spectral', got "
                         f"{bisector!r}")
    if bisector == "spectral" and (k & (k - 1)) != 0:
        raise ValueError("spectral bisector requires k to be a power of 2")
    g = A if isinstance(A, Graph) else Graph.from_matrix(A)
    rng = rng_from(seed)
    n = g.n_vertices
    part = np.full(n, SEPARATOR, dtype=np.int64)
    levels: list[np.ndarray] = []

    def recurse(sub: Graph, ids: np.ndarray, k_here: int, low: int,
                depth: int) -> None:
        if k_here == 1 or sub.n_vertices == 0:
            part[ids] = low
            return
        k_left = k_here // 2
        target0 = k_left / k_here
        if bisector == "spectral":
            from repro.graphs.spectral import spectral_bisection
            try:
                bis = spectral_bisection(sub, epsilon=epsilon, seed=rng)
            except RuntimeError:
                # disconnected block: fall back to multilevel FM
                bis = bisect_graph(sub, epsilon=epsilon, target0=target0,
                                   seed=rng, n_trials=n_trials)
        else:
            bis = bisect_graph(sub, epsilon=epsilon, target0=target0,
                               seed=rng, n_trials=n_trials)
        vs = vertex_separator_from_cut(sub, bis.side)
        while len(levels) <= depth:
            levels.append(np.empty(0, dtype=np.int64))
        levels[depth] = np.concatenate([levels[depth], ids[vs.separator]])
        g0, ids0 = sub.subgraph(ids_local := vs.side0)
        g1, ids1 = sub.subgraph(vs.side1)
        recurse(g0, ids[ids_local], k_left, low, depth + 1)
        recurse(g1, ids[vs.side1], k_here - k_left, low + k_left, depth + 1)

    recurse(g, np.arange(n, dtype=np.int64), k, 0, 0)
    if verify is True:
        from repro.verify.invariants import Verifier
        verify = Verifier()
    if verify is not None and getattr(verify, "enabled", False):
        adj = sp.csr_matrix(
            (np.ones(g.indices.size), g.indices, g.indptr), shape=(n, n))
        verify.check_vertex_separator(adj, part, k)
    return NGDResult(part=part, k=k, levels=levels)
