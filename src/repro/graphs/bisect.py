"""Multilevel graph bisection.

Pipeline: heavy-edge-matching coarsening -> initial-partition portfolio
on the coarsest graph (greedy BFS growth from pseudo-peripheral seeds +
random balanced assignments) -> FM refinement at every level during
uncoarsening. Supports asymmetric target fractions so recursive
dissection can produce non-power-of-two part counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.coarsen import coarsen
from repro.graphs.fm import fm_refine_bisection
from repro.graphs.graph import Graph
from repro.utils import SeedLike, fraction, rng_from, spawn

__all__ = ["BisectionResult", "bisect_graph", "greedy_bfs_bisection"]


@dataclass(frozen=True)
class BisectionResult:
    """A 0/1 side assignment with its cut weight and side weights."""

    side: np.ndarray
    cut: int
    part_weights: tuple[int, int]

    @property
    def imbalance(self) -> float:
        """(Wmax - Wavg) / Wavg as in Eq. (6) of the paper."""
        wavg = sum(self.part_weights) / 2.0
        return (max(self.part_weights) - wavg) / wavg if wavg else 0.0


def _side_weights(g: Graph, side: np.ndarray) -> tuple[int, int]:
    pw = np.zeros(2, dtype=np.int64)
    np.add.at(pw, side, g.vertex_weights)
    return int(pw[0]), int(pw[1])


def greedy_bfs_bisection(g: Graph, target0: float, seed: SeedLike = None) -> np.ndarray:
    """Grow side 0 by BFS from a random seed until it holds ``target0``
    of the total vertex weight; remaining vertices form side 1."""
    rng = rng_from(seed)
    n = g.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    goal = target0 * g.total_vertex_weight
    side = np.ones(n, dtype=np.int64)
    start = int(rng.integers(n))
    acc = 0
    queue = [start]
    head = 0
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    while acc < goal:
        if head >= len(queue):
            rest = np.flatnonzero(~seen)
            if rest.size == 0:
                break
            nxt = int(rest[rng.integers(rest.size)])
            seen[nxt] = True
            queue.append(nxt)
        v = queue[head]
        head += 1
        if acc + g.vertex_weights[v] > goal and acc > 0:
            break
        side[v] = 0
        acc += int(g.vertex_weights[v])
        for u in g.neighbors(v):
            if not seen[u]:
                seen[u] = True
                queue.append(int(u))
    return side


def _random_balanced(g: Graph, target0: float,
                     seed: SeedLike = None) -> np.ndarray:
    """Random assignment filling side 0 to the target weight."""
    rng = rng_from(seed)
    n = g.n_vertices
    order = rng.permutation(n)
    side = np.ones(n, dtype=np.int64)
    goal = target0 * g.total_vertex_weight
    acc = 0
    for v in order:
        if acc >= goal:
            break
        side[v] = 0
        acc += int(g.vertex_weights[v])
    return side


def bisect_graph(g: Graph, *, epsilon: float = 0.05, target0: float = 0.5,
                 seed: SeedLike = None, n_trials: int = 4,
                 coarsen_min: int = 96, fm_passes: int = 8) -> BisectionResult:
    """Multilevel bisection of ``g`` into sides with weight fractions
    ``(target0, 1 - target0)`` within tolerance ``epsilon``.

    Returns the best :class:`BisectionResult` over ``n_trials``
    independent initial partitions.
    """
    epsilon = fraction(epsilon, "epsilon", lo=0.0, hi=1.0)
    target0 = fraction(target0, "target0", lo=0.05, hi=0.95)
    rng = rng_from(seed)
    total = g.total_vertex_weight
    caps = ((1.0 + epsilon) * target0 * total,
            (1.0 + epsilon) * (1.0 - target0) * total)
    # cap coarse-vertex growth so balance stays achievable
    max_cw = max(1, int(np.ceil(max(caps) / 8)))
    levels = coarsen(g, min_vertices=coarsen_min, seed=rng, max_weight=max_cw)
    coarsest = levels[-1].graph if levels else g

    best: BisectionResult | None = None
    for child in spawn(rng, max(1, n_trials)):
        if child.random() < 0.5 or coarsest.n_vertices < 4:
            side = greedy_bfs_bisection(coarsest, target0, child)
        else:
            side = _random_balanced(coarsest, target0, child)
        side, _ = fm_refine_bisection(coarsest, side, max_part_weight=caps,
                                      max_passes=fm_passes)
        # uncoarsen with refinement at each level
        for i in range(len(levels) - 1, -1, -1):
            side = levels[i].project(side)
            fine_graph = g if i == 0 else levels[i - 1].graph
            side, _ = fm_refine_bisection(fine_graph, side,
                                          max_part_weight=caps,
                                          max_passes=fm_passes)
        cut = g.edge_cut(side)
        pw = _side_weights(g, side)
        cand = BisectionResult(side=side, cut=cut, part_weights=pw)
        if best is None or _better(cand, best, caps):
            best = cand
    assert best is not None
    return best


def _better(a: BisectionResult, b: BisectionResult,
            caps: tuple[float, float]) -> bool:
    """Prefer feasible partitions, then lower cut, then better balance."""
    fa = a.part_weights[0] <= caps[0] and a.part_weights[1] <= caps[1]
    fb = b.part_weights[0] <= caps[0] and b.part_weights[1] <= caps[1]
    if fa != fb:
        return fa
    if a.cut != b.cut:
        return a.cut < b.cut
    return max(a.part_weights) < max(b.part_weights)
