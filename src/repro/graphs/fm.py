"""Fiduccia-Mattheyses refinement for graph bisections (edge cut).

Single-vertex moves with a lazy max-gain heap, one-move-per-vertex
locking per pass, negative-gain hill climbing with rollback to the best
prefix, and a hard balance ceiling per side. Used by the multilevel
bisector at every uncoarsening level.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph
from repro.utils import as_int_array

__all__ = ["fm_refine_bisection", "compute_gains"]


def compute_gains(g: Graph, side: np.ndarray) -> np.ndarray:
    """FM gain of moving each vertex to the other side:
    (external edge weight) - (internal edge weight). Vectorized over the
    adjacency arrays."""
    n = g.n_vertices
    if g.indices.size == 0:
        return np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n), np.diff(g.indptr))
    sign = np.where(side[src] != side[g.indices], 1, -1)
    return np.bincount(src, weights=g.edge_weights * sign,
                       minlength=n).astype(np.int64)


def fm_refine_bisection(g: Graph, side: np.ndarray, *,
                        max_part_weight: float | tuple[float, float],
                        max_passes: int = 8,
                        stall_limit: int = 200) -> tuple[np.ndarray, int]:
    """Refine a 0/1 ``side`` assignment in place-semantics (returns a copy).

    Parameters
    ----------
    max_part_weight:
        Hard ceiling on each side's total vertex weight — a scalar
        (same for both) or a pair ``(cap0, cap1)`` for asymmetric
        targets. Moves that would exceed the destination cap are skipped
        (unless the source side itself exceeds its cap, in which case
        outbound moves are allowed to restore feasibility).
    stall_limit:
        Abort a pass after this many consecutive non-improving moves.

    Returns
    -------
    (refined side array, final cut weight)
    """
    side = as_int_array(side, "side").copy()
    n = g.n_vertices
    if side.shape != (n,):
        raise ValueError("side must have one entry per vertex")
    caps = np.broadcast_to(np.asarray(max_part_weight, dtype=np.float64),
                           (2,)).copy()
    part_weight_arr = np.zeros(2, dtype=np.int64)
    np.add.at(part_weight_arr, side, g.vertex_weights)
    cut = g.edge_cut(side)
    # hot-loop state in plain Python containers (see hypergraph FM)
    side_l = side.tolist()
    part_weight = part_weight_arr.tolist()
    caps_l = caps.tolist()
    indptr = g.indptr.tolist()
    indices = g.indices.tolist()
    edge_weights = g.edge_weights.tolist()
    vw = g.vertex_weights.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop

    for _ in range(max_passes):
        gains = compute_gains(g, np.asarray(side_l, dtype=np.int64)).tolist()
        locked = bytearray(n)
        heap = [(-gains[v], v) for v in range(n)]
        heapq.heapify(heap)
        best_cut, cur_cut = cut, cut
        trail: list[int] = []  # moved vertices, in order
        best_len = 0
        stall = 0
        while heap and stall < stall_limit:
            ng_, v = heappop(heap)
            if locked[v] or -ng_ != gains[v]:
                continue
            src = side_l[v]
            dst = 1 - src
            wv = vw[v]
            feasible = (part_weight[dst] + wv <= caps_l[dst]
                        or part_weight[src] > caps_l[src])
            if not feasible:
                continue
            # apply move
            locked[v] = 1
            side_l[v] = dst
            part_weight[src] -= wv
            part_weight[dst] += wv
            cur_cut -= gains[v]
            gains[v] = -gains[v]
            trail.append(v)
            for p in range(indptr[v], indptr[v + 1]):
                u = indices[p]
                if locked[u]:
                    continue
                ew = edge_weights[p]
                # edge (v,u): v changed sides, so the contribution of this
                # edge to gain(u) flips by 2*ew in the appropriate direction
                gains[u] += 2 * ew if side_l[u] == src else -2 * ew
                heappush(heap, (-gains[u], u))
            if cur_cut < best_cut:
                best_cut = cur_cut
                best_len = len(trail)
                stall = 0
            else:
                stall += 1
        # roll back moves after the best prefix
        for v in trail[best_len:]:
            dst = side_l[v]
            src = 1 - dst
            side_l[v] = src
            part_weight[dst] -= vw[v]
            part_weight[src] += vw[v]
        if best_cut >= cut:
            break
        cut = best_cut
    return np.asarray(side_l, dtype=np.int64), cut
