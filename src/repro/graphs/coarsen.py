"""Multilevel graph coarsening by heavy-edge matching.

Standard METIS-style HEM: visit vertices in random order, match each
unmatched vertex with the unmatched neighbour sharing the heaviest edge
(ties to lower index); unmatched vertices map to singleton coarse
vertices. Vertex weights add; parallel coarse edges accumulate weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils import SeedLike, rng_from

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen"]


@dataclass
class CoarseLevel:
    """One coarsening step: the coarse graph and the fine->coarse map."""

    graph: Graph
    fine_to_coarse: np.ndarray

    def project(self, coarse_side: np.ndarray) -> np.ndarray:
        """Lift a per-coarse-vertex label to the fine vertices."""
        return coarse_side[self.fine_to_coarse]


def heavy_edge_matching(g: Graph, seed: SeedLike = None,
                        max_weight: int | None = None) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = matched partner (or v itself).

    ``max_weight`` caps the combined vertex weight of a matched pair so
    coarse vertices cannot grow past the balance tolerance.
    """
    rng = rng_from(seed)
    n = g.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] >= 0:
            continue
        best, best_w = v, -1
        for p in range(g.indptr[v], g.indptr[v + 1]):
            u = g.indices[p]
            if match[u] >= 0 or u == v:
                continue
            if max_weight is not None and \
                    g.vertex_weights[v] + g.vertex_weights[u] > max_weight:
                continue
            w = int(g.edge_weights[p])
            if w > best_w or (w == best_w and u < best):
                best, best_w = int(u), w
        match[v] = best
        match[best] = v
    return match


def contract(g: Graph, match: np.ndarray) -> CoarseLevel:
    """Contract matched pairs into coarse vertices."""
    n = g.n_vertices
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    nc = 0
    for v in range(n):
        if fine_to_coarse[v] >= 0:
            continue
        u = match[v]
        fine_to_coarse[v] = nc
        if u != v:
            fine_to_coarse[u] = nc
        nc += 1
    # coarse vertex weights
    cvw = np.zeros(nc, dtype=np.int64)
    np.add.at(cvw, fine_to_coarse, g.vertex_weights)
    # coarse adjacency via sparse contraction: P^T A P with P the map
    A = g.to_matrix()
    P = sp.csr_matrix((np.ones(n, dtype=np.int64),
                       (np.arange(n), fine_to_coarse)), shape=(n, nc))
    C = (P.T @ A @ P).tocoo()
    keep = C.row != C.col
    Cadj = sp.csr_matrix((C.data[keep], (C.row[keep], C.col[keep])),
                         shape=(nc, nc))
    Cadj.sum_duplicates()
    Cadj.sort_indices()
    cg = Graph(Cadj.indptr, Cadj.indices,
               Cadj.data.astype(np.int64), cvw)
    return CoarseLevel(graph=cg, fine_to_coarse=fine_to_coarse)


def coarsen(g: Graph, *, min_vertices: int = 64, max_levels: int = 40,
            reduction_floor: float = 0.95, seed: SeedLike = None,
            max_weight: int | None = None) -> list[CoarseLevel]:
    """Repeatedly match-and-contract until the graph is small.

    Stops when the graph has at most ``min_vertices`` vertices, a level
    shrinks by less than ``1 - reduction_floor``, or ``max_levels`` is
    reached. Returns the list of levels, finest first (empty when no
    coarsening happened).
    """
    rng = rng_from(seed)
    levels: list[CoarseLevel] = []
    cur = g
    for _ in range(max_levels):
        if cur.n_vertices <= min_vertices:
            break
        match = heavy_edge_matching(cur, rng, max_weight=max_weight)
        level = contract(cur, match)
        if level.graph.n_vertices >= reduction_floor * cur.n_vertices:
            break
        levels.append(level)
        cur = level.graph
    return levels
