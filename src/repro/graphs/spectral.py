"""Spectral graph bisection (Fiedler vector) with an own Lanczos solver.

A third partitioning baseline alongside multilevel FM and NGD: split at
the median of the Fiedler vector (second-smallest Laplacian
eigenvector), optionally polishing with FM. The eigenvector comes from
:func:`lanczos_fiedler` — Lanczos tridiagonalization with full
reorthogonalization, deflating the constant nullspace — so the library
carries its own symmetric eigensolver substrate.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.bisect import BisectionResult
from repro.graphs.fm import fm_refine_bisection
from repro.graphs.graph import Graph
from repro.utils import SeedLike, positive_int, rng_from

__all__ = ["graph_laplacian", "lanczos_fiedler", "spectral_bisection"]


def graph_laplacian(g: Graph) -> sp.csr_matrix:
    """Weighted combinatorial Laplacian ``D - W`` of a Graph."""
    W = g.to_matrix()
    deg = np.asarray(W.sum(axis=1)).ravel()
    return (sp.diags(deg) - W).tocsr()


def lanczos_fiedler(L: sp.spmatrix, *, m: int = 80, tol: float = 1e-8,
                    seed: SeedLike = 0) -> tuple[float, np.ndarray]:
    """Second-smallest eigenpair of a graph Laplacian by Lanczos.

    Full reorthogonalization against the Krylov basis and explicit
    deflation of the constant vector (the known nullspace of a connected
    graph's Laplacian). Returns ``(lambda_2, fiedler_vector)``.
    """
    L = L.tocsr()
    n = L.shape[0]
    if n < 2:
        raise ValueError("Laplacian must be at least 2x2")
    m = min(positive_int(m, "m"), n - 1)
    rng = rng_from(seed)
    ones = np.full(n, 1.0 / np.sqrt(n))

    def deflate(x: np.ndarray) -> np.ndarray:
        return x - (ones @ x) * ones

    q = deflate(rng.standard_normal(n))
    q /= np.linalg.norm(q)
    Q = np.zeros((n, m))
    alpha = np.zeros(m)
    beta = np.zeros(m)
    Q[:, 0] = q
    prev_ritz = np.inf
    k_done = 0
    for k in range(m):
        w = L @ Q[:, k]
        w = deflate(w)
        alpha[k] = Q[:, k] @ w
        w -= alpha[k] * Q[:, k]
        if k > 0:
            w -= beta[k - 1] * Q[:, k - 1]
        # full reorthogonalization (twice is enough)
        for _ in range(2):
            w -= Q[:, :k + 1] @ (Q[:, :k + 1].T @ w)
        nb = np.linalg.norm(w)
        k_done = k + 1
        if nb < 1e-12:
            break
        if k + 1 < m:
            beta[k] = nb
            Q[:, k + 1] = w / nb
        # convergence check on the smallest Ritz value every few steps
        if k >= 4 and (k % 5 == 0 or k == m - 1):
            T = np.diag(alpha[:k + 1]) + np.diag(beta[:k], 1) \
                + np.diag(beta[:k], -1)
            ritz = np.linalg.eigvalsh(T)[0]
            if abs(prev_ritz - ritz) <= tol * max(abs(ritz), 1.0):
                break
            prev_ritz = ritz
    T = np.diag(alpha[:k_done]) + np.diag(beta[:k_done - 1], 1) \
        + np.diag(beta[:k_done - 1], -1)
    evals, evecs = np.linalg.eigh(T)
    lam = float(evals[0])
    v = Q[:, :k_done] @ evecs[:, 0]
    v = deflate(v)
    norm = np.linalg.norm(v)
    if norm < 1e-12:
        raise RuntimeError("Lanczos failed to find a non-trivial Fiedler "
                           "direction (graph may be disconnected)")
    return lam, v / norm


def spectral_bisection(g: Graph, *, epsilon: float = 0.05,
                       seed: SeedLike = 0, refine: bool = True,
                       fm_passes: int = 4) -> BisectionResult:
    """Bisect ``g`` at the weighted median of its Fiedler vector.

    ``refine=True`` polishes the spectral split with FM under the usual
    balance caps; the spectral direction supplies the global structure
    that local FM lacks.
    """
    n = g.n_vertices
    if n < 2:
        side = np.zeros(n, dtype=np.int64)
        return BisectionResult(side=side, cut=0,
                               part_weights=(int(g.vertex_weights.sum()), 0))
    _, v = lanczos_fiedler(graph_laplacian(g), seed=seed)
    order = np.argsort(v, kind="stable")
    w = g.vertex_weights[order]
    csum = np.cumsum(w)
    half = csum[-1] / 2.0
    split = int(np.searchsorted(csum, half)) + 1
    split = min(max(split, 1), n - 1)
    side = np.ones(n, dtype=np.int64)
    side[order[:split]] = 0
    total = g.total_vertex_weight
    caps = ((1.0 + epsilon) * total / 2.0, (1.0 + epsilon) * total / 2.0)
    if refine:
        side, cut = fm_refine_bisection(g, side, max_part_weight=caps,
                                        max_passes=fm_passes)
    else:
        cut = g.edge_cut(side)
    pw = np.zeros(2, dtype=np.int64)
    np.add.at(pw, side, g.vertex_weights)
    return BisectionResult(side=side, cut=cut,
                           part_weights=(int(pw[0]), int(pw[1])))
