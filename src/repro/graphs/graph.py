"""Undirected weighted graph on CSR adjacency.

The NGD baseline (PT-Scotch style) operates on the adjacency graph of
the symmetrized matrix. :class:`Graph` stores vertex weights (used by
balance constraints), edge weights (accumulated by coarsening), and a
CSR adjacency without self-loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.symmetrize import symmetrized
from repro.utils import as_int_array, check_csr, check_square

__all__ = ["Graph"]


@dataclass
class Graph:
    """Undirected graph in CSR form.

    Attributes
    ----------
    indptr, indices:
        CSR adjacency (each undirected edge appears in both rows).
    edge_weights:
        Weight per stored (directed) adjacency entry; symmetric.
    vertex_weights:
        Integer weight per vertex (>= 1).
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_weights: np.ndarray
    vertex_weights: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = as_int_array(self.indptr, "indptr")
        self.indices = as_int_array(self.indices, "indices")
        self.edge_weights = np.ascontiguousarray(self.edge_weights, dtype=np.int64)
        self.vertex_weights = as_int_array(self.vertex_weights, "vertex_weights")
        n = self.n_vertices
        if self.indptr.size != n + 1:
            raise ValueError("indptr length must be n_vertices + 1")
        if self.indices.size != self.indptr[-1]:
            raise ValueError("indices length must equal indptr[-1]")
        if self.edge_weights.size != self.indices.size:
            raise ValueError("edge_weights must parallel indices")

    @property
    def n_vertices(self) -> int:
        return self.vertex_weights.size

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    @property
    def total_vertex_weight(self) -> int:
        return int(self.vertex_weights.sum())

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @classmethod
    def from_matrix(cls, A: sp.spmatrix,
                    vertex_weights: np.ndarray | None = None) -> "Graph":
        """Adjacency graph of ``|A| + |A|^T`` with self-loops removed.

        Edge weights count the (symmetrized) structural multiplicity so
        heavy-edge matching prefers strongly coupled vertex pairs.
        """
        A = check_csr(A)
        check_square(A)
        S = symmetrized(A).tocoo()
        keep = S.row != S.col
        n = A.shape[0]
        Adj = sp.csr_matrix((np.ones(keep.sum(), dtype=np.int64),
                             (S.row[keep], S.col[keep])), shape=(n, n))
        Adj.sum_duplicates()
        Adj.sort_indices()
        vw = (np.ones(n, dtype=np.int64) if vertex_weights is None
              else as_int_array(vertex_weights, "vertex_weights"))
        if vw.size != n:
            raise ValueError("vertex_weights length mismatch")
        return cls(Adj.indptr, Adj.indices,
                   Adj.data.astype(np.int64), vw)

    def to_matrix(self) -> sp.csr_matrix:
        """CSR adjacency matrix with edge weights as values."""
        n = self.n_vertices
        return sp.csr_matrix((self.edge_weights.astype(np.float64),
                              self.indices.copy(), self.indptr.copy()),
                             shape=(n, n))

    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph; returns (subgraph, original-index map)."""
        vertices = as_int_array(vertices, "vertices")
        n = self.n_vertices
        local = np.full(n, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size)
        sub_indptr = [0]
        sub_indices: list[int] = []
        sub_ew: list[int] = []
        for v in vertices:
            for p in range(self.indptr[v], self.indptr[v + 1]):
                w = local[self.indices[p]]
                if w >= 0:
                    sub_indices.append(int(w))
                    sub_ew.append(int(self.edge_weights[p]))
            sub_indptr.append(len(sub_indices))
        g = Graph(np.asarray(sub_indptr), np.asarray(sub_indices, dtype=np.int64),
                  np.asarray(sub_ew, dtype=np.int64),
                  self.vertex_weights[vertices].copy())
        return g, vertices.copy()

    def connected_components(self) -> np.ndarray:
        """Component label per vertex (BFS)."""
        n = self.n_vertices
        label = np.full(n, -1, dtype=np.int64)
        comp = 0
        for s in range(n):
            if label[s] >= 0:
                continue
            label[s] = comp
            stack = [s]
            while stack:
                u = stack.pop()
                for p in range(self.indptr[u], self.indptr[u + 1]):
                    w = self.indices[p]
                    if label[w] < 0:
                        label[w] = comp
                        stack.append(int(w))
            comp += 1
        return label

    def edge_cut(self, side: np.ndarray) -> int:
        """Total weight of edges crossing a 0/1 side assignment."""
        side = as_int_array(side, "side")
        src = np.repeat(np.arange(self.n_vertices), np.diff(self.indptr))
        crossing = side[src] != side[self.indices]
        return int(self.edge_weights[crossing].sum()) // 2
